// The concurrent TCP serving layer (src/net/) over a loopback socket.
//
// Everything here runs a real net::Server over the golden snapshot's
// Engine — one shared read-only mapping — and drives it through real
// sockets, covering what the typed tests cannot:
//
//   * concurrency: N scripted sessions at once, each transcript
//     byte-identical to tests/data/serve_session.expected (this is also
//     the workload the ThreadSanitizer CI job runs);
//   * socket-edge protocol behavior: requests split across writes, CRLF
//     framing, oversized lines (err + resync, not disconnect), abrupt
//     client disconnects mid-session, --max-conns capacity rejection;
//   * lifecycle: quit ends one session and not the server; request_stop()
//     unblocks parked sessions and run() joins them all.
//
// Replies are bitwise deterministic only at one OpenMP thread (the
// double-reduction kernels use dynamic scheduling), so like
// tests/test_engine.cpp the suite pins util::set_threads(1).
#include "net/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "engine/protocol.hpp"
#include "graph/io.hpp"
#include "net/line_reader.hpp"
#include "net/socket.hpp"
#include "util/threading.hpp"

namespace probgraph {
namespace {

class PinThreads : public ::testing::Environment {
 public:
  void SetUp() override { util::set_threads(1); }
};
const auto* const kPin =
    ::testing::AddGlobalTestEnvironment(new PinThreads);  // NOLINT(cert-err58-cpp)

std::string data_path(const char* name) {
  return std::string(PROBGRAPH_TEST_DATA_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// One server over one snapshot-backed Engine, run()ning on a background
/// thread for the duration of a test.
struct ServerFixture {
  explicit ServerFixture(net::ServerOptions opts = {})
      : engine(engine::Engine::from_snapshot(data_path("golden.pgs"))),
        server(engine, opts),
        thread([this] { server.run(); }) {}

  ~ServerFixture() {
    server.request_stop();
    if (thread.joinable()) thread.join();
  }

  engine::Engine engine;
  net::Server server;
  std::thread thread;
};

/// Read every byte until the server closes the connection.
std::string drain(net::Socket& sock) {
  std::string out;
  char buf[4096];
  for (;;) {
    const long got = sock.read_some(buf, sizeof buf);
    if (got <= 0) break;
    out.append(buf, static_cast<std::size_t>(got));
  }
  return out;
}

/// Scripted client: connect, send the whole script, half-close, read the
/// full transcript. Mirrors `pgtool client < script`.
std::string run_scripted_session(std::uint16_t port, const std::string& script) {
  net::Socket sock = net::connect_to("127.0.0.1", port);
  EXPECT_TRUE(sock.write_all(script));
  sock.shutdown_write();
  return drain(sock);
}

/// Read exactly one reply line (newline stripped) — for ping-pong tests.
std::string read_reply_line(net::LineReader& reader) {
  std::string line;
  EXPECT_EQ(reader.next(line), net::LineReader::Status::kLine);
  return line;
}

TEST(ServeNet, ScriptedSessionMatchesGoldenTranscript) {
  ServerFixture f;
  const std::string transcript =
      run_scripted_session(f.server.port(), read_file(data_path("serve_session.txt")));
  EXPECT_EQ(transcript, read_file(data_path("serve_session.expected")));
  f.server.request_stop();
  f.thread.join();
  const auto c = f.server.counters();
  EXPECT_EQ(c.accepted, 1u);
  EXPECT_EQ(c.rejected, 0u);
  // The fixture's 12 "ok" replies (help/bye/err lines are not queries).
  EXPECT_EQ(c.queries_answered, 12u);
}

TEST(ServeNet, FourConcurrentSessionsOverOneMappingAreByteIdentical) {
  // The acceptance workload (and the TSan job's): 4 sessions against ONE
  // shared Engine/mapping, every transcript byte-for-byte the golden one.
  ServerFixture f;
  const std::string script = read_file(data_path("serve_session.txt"));
  const std::string expected = read_file(data_path("serve_session.expected"));

  constexpr int kClients = 4;
  std::vector<std::string> transcripts(kClients);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        transcripts[static_cast<std::size_t>(i)] =
            run_scripted_session(f.server.port(), script);
      });
    }
    for (auto& t : clients) t.join();
  }
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(transcripts[static_cast<std::size_t>(i)], expected)
        << "client " << i << " transcript diverges";
  }
}

TEST(ServeNet, ConcurrentSessionsHitDifferentSubstratesOfOneMapping) {
  // The multi-substrate acceptance workload: ONE server over the v2
  // golden snapshot (BF/sym + BF/dag + KMV/sym + KMV/dag), half the
  // clients driving DAG-substrate counting scripts and half driving
  // symmetric-substrate neighborhood scripts — every reply routed through
  // the same lock-free mapping, every transcript byte-identical to the
  // checked-in expectation for its script.
  engine::Engine eng = engine::Engine::from_snapshot(data_path("golden_v2.pgs"));
  net::Server server(eng, {});
  std::thread runner([&] { server.run(); });

  const std::string scripts[2] = {read_file(data_path("serve_multi_tc.txt")),
                                  read_file(data_path("serve_multi_pair.txt"))};
  const std::string expected[2] = {read_file(data_path("serve_multi_tc.expected")),
                                   read_file(data_path("serve_multi_pair.expected"))};

  constexpr int kClients = 4;  // two per script, interleaved
  std::vector<std::string> transcripts(kClients);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        transcripts[static_cast<std::size_t>(i)] =
            run_scripted_session(server.port(), scripts[i % 2]);
      });
    }
    for (auto& t : clients) t.join();
  }
  server.request_stop();
  runner.join();

  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(transcripts[static_cast<std::size_t>(i)], expected[i % 2])
        << "client " << i << " transcript diverges";
  }
}

TEST(ServeNet, LazyCacheBuildIsRaceFreeAcrossSessions) {
  // An IN-MEMORY engine shared by concurrent sessions: the first tc/4cc
  // queries race to build the DAG + oriented sketches, cc races to build
  // the symmetric sketches — exactly the paths Engine's cache mutex
  // guards (a snapshot engine never builds, so it cannot cover them).
  engine::Engine eng(io::read_edge_list(data_path("golden.el")));
  net::Server server(eng, {});
  std::thread runner([&] { server.run(); });

  const std::string script = "tc\n4cc\ncc\nstats\nquit\n";
  constexpr int kClients = 4;
  std::vector<std::string> transcripts(kClients);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        transcripts[static_cast<std::size_t>(i)] =
            run_scripted_session(server.port(), script);
      });
    }
    for (auto& t : clients) t.join();
  }
  server.request_stop();
  runner.join();

  EXPECT_EQ(transcripts[0].rfind("ok\ttc\t", 0), 0u) << transcripts[0];
  for (int i = 1; i < kClients; ++i) {
    EXPECT_EQ(transcripts[static_cast<std::size_t>(i)], transcripts[0])
        << "client " << i << " saw different lazily-built caches";
  }
}

TEST(ServeNet, PartialWritesAndCrlfFramesParse) {
  ServerFixture f;
  net::Socket sock = net::connect_to("127.0.0.1", f.server.port());
  net::LineReader reader(sock, 1 << 16);

  // One request split across three writes...
  ASSERT_TRUE(sock.write_all("sta"));
  ASSERT_TRUE(sock.write_all("t"));
  ASSERT_TRUE(sock.write_all("s\n"));
  EXPECT_EQ(read_reply_line(reader).rfind("ok\tstats\tn=32\t", 0), 0u);

  // ...a CRLF-framed request (telnet/netcat style)...
  ASSERT_TRUE(sock.write_all("pair intersection 0 1\r\n"));
  EXPECT_EQ(read_reply_line(reader).rfind("ok\tpair\t0:1=", 0), 0u);

  // ...and two requests in one write: two replies, in order.
  ASSERT_TRUE(sock.write_all("help\nquit\n"));
  EXPECT_EQ(read_reply_line(reader).rfind("ok\thelp\t", 0), 0u);
  EXPECT_EQ(read_reply_line(reader), "bye");
}

TEST(ServeNet, OversizedLineAnswersErrAndSessionRecovers) {
  net::ServerOptions opts;
  opts.max_line_bytes = 128;
  ServerFixture f(opts);
  net::Socket sock = net::connect_to("127.0.0.1", f.server.port());
  net::LineReader reader(sock, 1 << 16);

  // A 4 KiB frame against a 128-byte bound: one err reply, then the
  // session keeps serving from the next line boundary — malformed frames
  // are uniform across transports (err + continue, never a drop).
  std::string garbage(4096, 'x');
  garbage += '\n';
  ASSERT_TRUE(sock.write_all(garbage));
  const std::string err = read_reply_line(reader);
  EXPECT_EQ(err.rfind("err\t", 0), 0u) << err;
  EXPECT_NE(err.find("128-byte limit"), std::string::npos) << err;

  ASSERT_TRUE(sock.write_all("stats\nquit\n"));
  EXPECT_EQ(read_reply_line(reader).rfind("ok\tstats\t", 0), 0u);
  EXPECT_EQ(read_reply_line(reader), "bye");
}

TEST(ServeNet, AbruptDisconnectMidSessionLeavesServerServing) {
  ServerFixture f;
  {
    // Fire a scan query and vanish without reading the reply: the server's
    // write hits a dead peer (EPIPE/RST) and must end that session only.
    net::Socket rude = net::connect_to("127.0.0.1", f.server.port());
    ASSERT_TRUE(rude.write_all("tc\ntc\ntc\n"));
    rude.close();
  }
  // The server still answers a full scripted session afterwards.
  const std::string transcript =
      run_scripted_session(f.server.port(), read_file(data_path("serve_session.txt")));
  EXPECT_EQ(transcript, read_file(data_path("serve_session.expected")));
}

TEST(ServeNet, QuitEndsOneSessionNotTheServer) {
  ServerFixture f;
  EXPECT_EQ(run_scripted_session(f.server.port(), "quit\n"), "bye\n");
  EXPECT_EQ(run_scripted_session(f.server.port(), "stats\nquit\n").substr(0, 9),
            "ok\tstats\t");
}

TEST(ServeNet, MaxConnsRejectsWithErrLineThenRecovers) {
  net::ServerOptions opts;
  opts.max_conns = 1;
  ServerFixture f(opts);

  // Occupy the single slot and prove the session is live.
  net::Socket held = net::connect_to("127.0.0.1", f.server.port());
  net::LineReader held_reader(held, 1 << 16);
  ASSERT_TRUE(held.write_all("stats\n"));
  EXPECT_EQ(read_reply_line(held_reader).rfind("ok\tstats\t", 0), 0u);

  // The second connection is answered with a capacity err line and closed
  // — distinguishable from both a refused connect and a protocol error.
  {
    net::Socket second = net::connect_to("127.0.0.1", f.server.port());
    const std::string reply = drain(second);
    EXPECT_EQ(reply.rfind("err\tserver at capacity", 0), 0u) << reply;
  }

  // Free the slot; the server accepts again (the reaper runs on accept, so
  // poll until the finished session has been collected).
  ASSERT_TRUE(held.write_all("quit\n"));
  EXPECT_EQ(read_reply_line(held_reader), "bye");
  held.close();

  bool served = false;
  for (int attempt = 0; attempt < 100 && !served; ++attempt) {
    const std::string reply =
        run_scripted_session(f.server.port(), "stats\nquit\n");
    if (reply.rfind("ok\tstats\t", 0) == 0) {
      served = true;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(served) << "server never freed the capacity slot";
  EXPECT_GE(f.server.counters().rejected, 1u);
}

TEST(ServeNet, RequestStopUnblocksParkedSessions) {
  auto engine = engine::Engine::from_snapshot(data_path("golden.pgs"));
  net::Server server(engine, {});
  std::thread runner([&] { server.run(); });

  // A connected client that never sends anything: its session thread is
  // parked in read. request_stop() must half-close it (read returns EOF)
  // and run() must join everything.
  net::Socket idle = net::connect_to("127.0.0.1", server.port());
  ASSERT_TRUE(idle.write_all("stats\n"));
  char buf[512];
  ASSERT_GT(idle.read_some(buf, sizeof buf), 0);  // session is live & parked

  server.request_stop();
  runner.join();
  EXPECT_EQ(drain(idle), "");  // EOF, promptly
  const auto c = server.counters();
  EXPECT_EQ(c.accepted, 1u);
  EXPECT_EQ(c.queries_answered, 1u);
}

TEST(ServeNet, EphemeralPortIsReportedAndDistinct) {
  auto engine = engine::Engine::from_snapshot(data_path("golden.pgs"));
  net::Server a(engine, {});
  net::Server b(engine, {});
  EXPECT_NE(a.port(), 0);
  EXPECT_NE(b.port(), 0);
  EXPECT_NE(a.port(), b.port());
}

}  // namespace
}  // namespace probgraph
