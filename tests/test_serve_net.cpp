// The concurrent TCP serving layer (src/net/) over a loopback socket.
//
// Everything here runs a real net::Transport over the golden snapshot's
// Engine — one shared read-only mapping — and drives it through real
// sockets, covering what the typed tests cannot:
//
//   * transport parity: every protocol-behavior test below is
//     value-parameterized over BOTH transports (thread-per-connection and
//     the epoll reactor) — same scripts, byte-identical transcripts;
//   * concurrency: N scripted sessions at once, each transcript
//     byte-identical to tests/data/serve_session.expected (this is also
//     the workload the ThreadSanitizer CI job runs);
//   * socket-edge protocol behavior: requests split across writes (down to
//     one byte per segment), CRLF framing, oversized lines (err + resync,
//     not disconnect), pipelined bursts coalesced into single segments,
//     abrupt client disconnects mid-session — including with a half-
//     flushed output buffer — and --max-conns capacity rejection;
//   * reactor scheduling: the per-turn fairness bound (observable through
//     the probgraph_reactor_turns_total counter) and a pipelining hog
//     sharing a single worker with a victim session;
//   * lifecycle: quit ends one session and not the server; request_stop()
//     unblocks parked sessions and run() joins them all.
//
// Replies are bitwise deterministic only at one OpenMP thread (the
// double-reduction kernels use dynamic scheduling), so like
// tests/test_engine.cpp the suite pins util::set_threads(1).
#include "net/transport.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "engine/protocol.hpp"
#include "graph/io.hpp"
#include "net/line_reader.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_http.hpp"
#include "util/threading.hpp"

namespace probgraph {
namespace {

class PinThreads : public ::testing::Environment {
 public:
  void SetUp() override { util::set_threads(1); }
};
const auto* const kPin =
    ::testing::AddGlobalTestEnvironment(new PinThreads);  // NOLINT(cert-err58-cpp)

std::string data_path(const char* name) {
  return std::string(PROBGRAPH_TEST_DATA_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// One transport over one snapshot-backed Engine, run()ning on a
/// background thread for the duration of a test.
struct ServerFixture {
  explicit ServerFixture(net::TransportKind kind, net::ServeOptions opts = {})
      : engine(engine::Engine::from_snapshot(data_path("golden.pgs"))) {
    opts.engine = &engine;
    server = net::make_transport(kind, opts);
    thread = std::thread([this] { server->run(); });
  }

  ~ServerFixture() {
    server->request_stop();
    if (thread.joinable()) thread.join();
  }

  engine::Engine engine;
  std::unique_ptr<net::Transport> server;
  std::thread thread;
};

/// Read every byte until the server closes the connection.
std::string drain(net::Socket& sock) {
  std::string out;
  char buf[4096];
  for (;;) {
    const long got = sock.read_some(buf, sizeof buf);
    if (got <= 0) break;
    out.append(buf, static_cast<std::size_t>(got));
  }
  return out;
}

/// Scripted client: connect, send the whole script, half-close, read the
/// full transcript. Mirrors `pgtool client < script`. The single write is
/// also the pipelining workload: every request of the script may land in
/// one segment, and the transcript must still be every reply in order.
std::string run_scripted_session(std::uint16_t port, const std::string& script) {
  net::Socket sock = net::connect_to("127.0.0.1", port);
  EXPECT_TRUE(sock.write_all(script));
  sock.shutdown_write();
  return drain(sock);
}

/// Read exactly one reply line (newline stripped) — for ping-pong tests.
std::string read_reply_line(net::LineReader& reader) {
  std::string line;
  EXPECT_EQ(reader.next(line), net::LineReader::Status::kLine);
  return line;
}

std::uint64_t counter_value(const char* name, const obs::Labels& labels = {}) {
  const obs::Counter* c = obs::Registry::global().find_counter(name, labels);
  return c == nullptr ? 0 : c->value();
}

/// Every protocol-behavior test runs against BOTH transports.
class ServeTransport : public ::testing::TestWithParam<net::TransportKind> {};

INSTANTIATE_TEST_SUITE_P(
    Transports, ServeTransport,
    ::testing::Values(net::TransportKind::kThreads, net::TransportKind::kEpoll),
    [](const ::testing::TestParamInfo<net::TransportKind>& info) {
      return std::string(net::transport_kind_name(info.param));
    });

TEST_P(ServeTransport, ScriptedSessionMatchesGoldenTranscript) {
  ServerFixture f(GetParam());
  const std::string transcript = run_scripted_session(
      f.server->port(), read_file(data_path("serve_session.txt")));
  EXPECT_EQ(transcript, read_file(data_path("serve_session.expected")));
  f.server->request_stop();
  f.thread.join();
  const auto c = f.server->counters();
  EXPECT_EQ(c.accepted, 1u);
  EXPECT_EQ(c.rejected, 0u);
  // The fixture's 12 "ok" replies (help/bye/err lines are not queries).
  EXPECT_EQ(c.queries_answered, 12u);
}

TEST_P(ServeTransport, FourConcurrentSessionsOverOneMappingAreByteIdentical) {
  // The acceptance workload (and the TSan job's): 4 sessions against ONE
  // shared Engine/mapping, every transcript byte-for-byte the golden one.
  ServerFixture f(GetParam());
  const std::string script = read_file(data_path("serve_session.txt"));
  const std::string expected = read_file(data_path("serve_session.expected"));

  constexpr int kClients = 4;
  std::vector<std::string> transcripts(kClients);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        transcripts[static_cast<std::size_t>(i)] =
            run_scripted_session(f.server->port(), script);
      });
    }
    for (auto& t : clients) t.join();
  }
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(transcripts[static_cast<std::size_t>(i)], expected)
        << "client " << i << " transcript diverges";
  }
}

TEST_P(ServeTransport, ConcurrentSessionsHitDifferentSubstratesOfOneMapping) {
  // The multi-substrate acceptance workload: ONE server over the v2
  // golden snapshot (BF/sym + BF/dag + KMV/sym + KMV/dag), half the
  // clients driving DAG-substrate counting scripts and half driving
  // symmetric-substrate neighborhood scripts — every reply routed through
  // the same lock-free mapping, every transcript byte-identical to the
  // checked-in expectation for its script.
  engine::Engine eng = engine::Engine::from_snapshot(data_path("golden_v2.pgs"));
  net::ServeOptions opts;
  opts.engine = &eng;
  auto server = net::make_transport(GetParam(), opts);
  std::thread runner([&] { server->run(); });

  const std::string scripts[2] = {read_file(data_path("serve_multi_tc.txt")),
                                  read_file(data_path("serve_multi_pair.txt"))};
  const std::string expected[2] = {read_file(data_path("serve_multi_tc.expected")),
                                   read_file(data_path("serve_multi_pair.expected"))};

  constexpr int kClients = 4;  // two per script, interleaved
  std::vector<std::string> transcripts(kClients);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        transcripts[static_cast<std::size_t>(i)] =
            run_scripted_session(server->port(), scripts[i % 2]);
      });
    }
    for (auto& t : clients) t.join();
  }
  server->request_stop();
  runner.join();

  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(transcripts[static_cast<std::size_t>(i)], expected[i % 2])
        << "client " << i << " transcript diverges";
  }
}

TEST_P(ServeTransport, LazyCacheBuildIsRaceFreeAcrossSessions) {
  // An IN-MEMORY engine shared by concurrent sessions: the first tc/4cc
  // queries race to build the DAG + oriented sketches, cc races to build
  // the symmetric sketches — exactly the paths Engine's cache mutex
  // guards (a snapshot engine never builds, so it cannot cover them).
  engine::Engine eng(io::read_edge_list(data_path("golden.el")));
  net::ServeOptions opts;
  opts.engine = &eng;
  auto server = net::make_transport(GetParam(), opts);
  std::thread runner([&] { server->run(); });

  const std::string script = "tc\n4cc\ncc\nstats\nquit\n";
  constexpr int kClients = 4;
  std::vector<std::string> transcripts(kClients);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        transcripts[static_cast<std::size_t>(i)] =
            run_scripted_session(server->port(), script);
      });
    }
    for (auto& t : clients) t.join();
  }
  server->request_stop();
  runner.join();

  EXPECT_EQ(transcripts[0].rfind("ok\ttc\t", 0), 0u) << transcripts[0];
  for (int i = 1; i < kClients; ++i) {
    EXPECT_EQ(transcripts[static_cast<std::size_t>(i)], transcripts[0])
        << "client " << i << " saw different lazily-built caches";
  }
}

TEST_P(ServeTransport, PartialWritesAndCrlfFramesParse) {
  ServerFixture f(GetParam());
  net::Socket sock = net::connect_to("127.0.0.1", f.server->port());
  net::LineReader reader(sock, 1 << 16);

  // One request split across three writes...
  ASSERT_TRUE(sock.write_all("sta"));
  ASSERT_TRUE(sock.write_all("t"));
  ASSERT_TRUE(sock.write_all("s\n"));
  EXPECT_EQ(read_reply_line(reader).rfind("ok\tstats\tn=32\t", 0), 0u);

  // ...a CRLF-framed request (telnet/netcat style)...
  ASSERT_TRUE(sock.write_all("pair intersection 0 1\r\n"));
  EXPECT_EQ(read_reply_line(reader).rfind("ok\tpair\t0:1=", 0), 0u);

  // ...and two requests in one write: two replies, in order.
  ASSERT_TRUE(sock.write_all("help\nquit\n"));
  EXPECT_EQ(read_reply_line(reader).rfind("ok\thelp\t", 0), 0u);
  EXPECT_EQ(read_reply_line(reader), "bye");
}

TEST_P(ServeTransport, OneByteSegmentsReassembleToTheGoldenTranscript) {
  // The fragmentation torture: the whole golden script delivered one byte
  // per write — every request is split mid-token many times over, and the
  // nonblocking framer must carry state across arbitrarily small reads.
  ServerFixture f(GetParam());
  const std::string script = read_file(data_path("serve_session.txt"));
  net::Socket sock = net::connect_to("127.0.0.1", f.server->port());
  for (const char byte : script) {
    ASSERT_TRUE(sock.write_all(&byte, 1));
  }
  sock.shutdown_write();
  EXPECT_EQ(drain(sock), read_file(data_path("serve_session.expected")));
}

TEST_P(ServeTransport, PipelinedBurstAnswersEveryReplyInOrder) {
  // 64 identical queries coalesced into one segment (one write, one likely
  // recv) must come back as exactly 64 replies in order — the pipelined
  // batch runs through SessionHost::run_batch and must be bit-identical
  // to 64 ping-pong round trips.
  ServerFixture f(GetParam());
  const std::string one =
      run_scripted_session(f.server->port(), "pair intersection 0 1\nquit\n");
  const std::string reply = one.substr(0, one.find("bye\n"));
  ASSERT_EQ(reply.rfind("ok\tpair\t", 0), 0u) << one;

  constexpr int kDepth = 64;
  std::string script;
  std::string expected;
  for (int i = 0; i < kDepth; ++i) {
    script += "pair intersection 0 1\n";
    expected += reply;
  }
  script += "quit\n";
  expected += "bye\n";
  EXPECT_EQ(run_scripted_session(f.server->port(), script), expected);
}

TEST_P(ServeTransport, OversizedLineAnswersErrAndSessionRecovers) {
  net::ServeOptions opts;
  opts.max_line_bytes = 128;
  ServerFixture f(GetParam(), opts);
  net::Socket sock = net::connect_to("127.0.0.1", f.server->port());
  net::LineReader reader(sock, 1 << 16);

  // A 4 KiB frame against a 128-byte bound: one err reply, then the
  // session keeps serving from the next line boundary — malformed frames
  // are uniform across transports (err + continue, never a drop).
  std::string garbage(4096, 'x');
  garbage += '\n';
  ASSERT_TRUE(sock.write_all(garbage));
  const std::string err = read_reply_line(reader);
  EXPECT_EQ(err.rfind("err\t", 0), 0u) << err;
  EXPECT_NE(err.find("128-byte limit"), std::string::npos) << err;

  ASSERT_TRUE(sock.write_all("stats\nquit\n"));
  EXPECT_EQ(read_reply_line(reader).rfind("ok\tstats\t", 0), 0u);
  EXPECT_EQ(read_reply_line(reader), "bye");
}

TEST_P(ServeTransport, InterleavedOverlongFramesEachAnswerOnceAndResync) {
  // Overlong frames interleaved with valid requests in ONE pipelined
  // segment: each oversized frame answers exactly one err line and the
  // frames behind it still answer — the resync state must survive the
  // burst no matter how the transport fragments its reads.
  net::ServeOptions opts;
  opts.max_line_bytes = 128;
  ServerFixture f(GetParam(), opts);

  std::string script;
  script += std::string(300, 'a') + "\n";
  script += "stats\n";
  script += std::string(4096, 'b') + "\n";
  script += "pair intersection 0 1\n";
  script += std::string(200, 'c') + "\n";
  script += "quit\n";
  const std::string transcript = run_scripted_session(f.server->port(), script);

  std::istringstream lines(transcript);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(line.find("128-byte limit"), std::string::npos) << line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.rfind("ok\tstats\t", 0), 0u) << line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(line.find("128-byte limit"), std::string::npos) << line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.rfind("ok\tpair\t0:1=", 0), 0u) << line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(line.find("128-byte limit"), std::string::npos) << line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "bye");
  EXPECT_FALSE(std::getline(lines, line)) << "unexpected trailing reply: " << line;
}

TEST_P(ServeTransport, AbruptDisconnectMidSessionLeavesServerServing) {
  ServerFixture f(GetParam());
  {
    // Fire a scan query and vanish without reading the reply: the server's
    // write hits a dead peer (EPIPE/RST) and must end that session only.
    net::Socket rude = net::connect_to("127.0.0.1", f.server->port());
    ASSERT_TRUE(rude.write_all("tc\ntc\ntc\n"));
    rude.close();
  }
  // The server still answers a full scripted session afterwards.
  const std::string transcript = run_scripted_session(
      f.server->port(), read_file(data_path("serve_session.txt")));
  EXPECT_EQ(transcript, read_file(data_path("serve_session.expected")));
}

TEST_P(ServeTransport, DisconnectWithHalfFlushedOutputBufferIsContained) {
  // A deep pipeline whose replies overflow the kernel buffers (the client
  // never reads), then an abrupt close: the transport is mid-flush with a
  // backlogged output buffer when the peer dies. The failure must be
  // contained to that session — and the server must keep serving.
  ServerFixture f(GetParam());
  {
    net::Socket rude = net::connect_to("127.0.0.1", f.server->port());
    std::string script;
    for (int i = 0; i < 2000; ++i) script += "help\n";
    ASSERT_TRUE(rude.write_all(script));
    // Give the server a beat to start answering into the full pipe.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    rude.close();
  }
  const std::string transcript = run_scripted_session(
      f.server->port(), read_file(data_path("serve_session.txt")));
  EXPECT_EQ(transcript, read_file(data_path("serve_session.expected")));
}

TEST_P(ServeTransport, QuitEndsOneSessionNotTheServer) {
  ServerFixture f(GetParam());
  EXPECT_EQ(run_scripted_session(f.server->port(), "quit\n"), "bye\n");
  EXPECT_EQ(run_scripted_session(f.server->port(), "stats\nquit\n").substr(0, 9),
            "ok\tstats\t");
}

TEST_P(ServeTransport, MaxConnsRejectsWithErrLineThenRecovers) {
  net::ServeOptions opts;
  opts.max_conns = 1;
  ServerFixture f(GetParam(), opts);

  // Occupy the single slot and prove the session is live.
  net::Socket held = net::connect_to("127.0.0.1", f.server->port());
  net::LineReader held_reader(held, 1 << 16);
  ASSERT_TRUE(held.write_all("stats\n"));
  EXPECT_EQ(read_reply_line(held_reader).rfind("ok\tstats\t", 0), 0u);

  // The second connection is answered with a capacity err line and closed
  // — distinguishable from both a refused connect and a protocol error.
  {
    net::Socket second = net::connect_to("127.0.0.1", f.server->port());
    const std::string reply = drain(second);
    EXPECT_EQ(reply.rfind("err\tserver at capacity", 0), 0u) << reply;
  }

  // Free the slot; the server accepts again (session teardown is
  // asynchronous on both transports, so poll until the slot is back).
  ASSERT_TRUE(held.write_all("quit\n"));
  EXPECT_EQ(read_reply_line(held_reader), "bye");
  held.close();

  bool served = false;
  for (int attempt = 0; attempt < 100 && !served; ++attempt) {
    const std::string reply =
        run_scripted_session(f.server->port(), "stats\nquit\n");
    if (reply.rfind("ok\tstats\t", 0) == 0) {
      served = true;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(served) << "server never freed the capacity slot";
  EXPECT_GE(f.server->counters().rejected, 1u);
}

TEST_P(ServeTransport, RequestStopUnblocksParkedSessions) {
  auto engine = engine::Engine::from_snapshot(data_path("golden.pgs"));
  net::ServeOptions opts;
  opts.engine = &engine;
  auto server = net::make_transport(GetParam(), opts);
  std::thread runner([&] { server->run(); });

  // A connected client that never sends anything more: its session is
  // parked (a blocked read, or an armed-and-idle epoll entry).
  // request_stop() must end it (the client sees EOF) and run() must
  // join/drain everything.
  net::Socket idle = net::connect_to("127.0.0.1", server->port());
  ASSERT_TRUE(idle.write_all("stats\n"));
  char buf[512];
  ASSERT_GT(idle.read_some(buf, sizeof buf), 0);  // session is live & parked

  server->request_stop();
  runner.join();
  EXPECT_EQ(drain(idle), "");  // EOF, promptly
  const auto c = server->counters();
  EXPECT_EQ(c.accepted, 1u);
  EXPECT_EQ(c.queries_answered, 1u);
}

TEST_P(ServeTransport, MetricsVerbAndTimeClauseWorkOverSockets) {
  ServerFixture f(GetParam());
  net::Socket sock = net::connect_to("127.0.0.1", f.server->port());
  net::LineReader reader(sock, 1 << 16);

  // `metrics` answers the one-line tab snapshot in-band...
  ASSERT_TRUE(sock.write_all("metrics\n"));
  const std::string snap = read_reply_line(reader);
  EXPECT_EQ(snap.rfind("ok\tmetrics\t", 0), 0u) << snap.substr(0, 64);
  EXPECT_NE(snap.find("probgraph_sessions_total="), std::string::npos);

  // ...and the opt-in time clause appends elapsed_us= to its own reply
  // only: the same query without the clause is byte-stable.
  ASSERT_TRUE(sock.write_all("stats time\nstats\nquit\n"));
  const std::string timed = read_reply_line(reader);
  EXPECT_NE(timed.find("\telapsed_us="), std::string::npos) << timed;
  const std::string plain = read_reply_line(reader);
  EXPECT_EQ(plain.find("elapsed_us="), std::string::npos) << plain;
  EXPECT_EQ(timed.substr(0, timed.find("\telapsed_us=")), plain);
  EXPECT_EQ(read_reply_line(reader), "bye");

  // The metrics reply is not a query: counters still say 2 (stats×2 — the
  // timed one counts; metrics and quit are bookkeeping).
  f.server->request_stop();
  f.thread.join();
  EXPECT_EQ(f.server->counters().queries_answered, 2u);
}

TEST(ServeNet, EphemeralPortIsReportedAndDistinct) {
  auto engine = engine::Engine::from_snapshot(data_path("golden.pgs"));
  net::ServeOptions opts;
  opts.engine = &engine;
  auto a = net::make_transport(net::TransportKind::kThreads, opts);
  auto b = net::make_transport(net::TransportKind::kEpoll, opts);
  EXPECT_NE(a->port(), 0);
  EXPECT_NE(b->port(), 0);
  EXPECT_NE(a->port(), b->port());
}

// --- Reactor-specific scheduling behavior. ---

TEST(ServeNetEpoll, FairnessBoundLimitsRequestsPerTurn) {
  // 64 pipelined requests against a per-turn bound of 4 must take at
  // least 64/4 scheduling turns: the reactor turns counter (delta-able,
  // unlike a histogram max) proves a hog cannot drain its whole backlog
  // in one turn.
  net::ServeOptions opts;
  opts.max_requests_per_turn = 4;
  const std::uint64_t turns_before =
      counter_value("probgraph_reactor_turns_total");

  ServerFixture f(net::TransportKind::kEpoll, opts);
  std::string script;
  for (int i = 0; i < 64; ++i) script += "stats\n";
  script += "quit\n";
  const std::string transcript = run_scripted_session(f.server->port(), script);
  EXPECT_EQ(transcript.rfind("ok\tstats\t", 0), 0u);
  EXPECT_NE(transcript.find("bye\n"), std::string::npos);

  f.server->request_stop();
  f.thread.join();
  const std::uint64_t turns =
      counter_value("probgraph_reactor_turns_total") - turns_before;
  EXPECT_GE(turns, 65u / 4u) << "a single turn drained more than the bound";
  EXPECT_EQ(f.server->counters().queries_answered, 64u);
}

TEST(ServeNetEpoll, PipeliningHogSharesTheOnlyWorkerWithAVictim) {
  // One worker, a tiny fairness bound, and a hog that pipelines a deep
  // backlog WITHOUT reading replies: a victim session arriving mid-burst
  // must still be answered (the hog re-queues at the tail every turn).
  net::ServeOptions opts;
  opts.workers = 1;
  opts.max_requests_per_turn = 2;
  ServerFixture f(net::TransportKind::kEpoll, opts);

  net::Socket hog = net::connect_to("127.0.0.1", f.server->port());
  std::string burst;
  for (int i = 0; i < 200; ++i) burst += "stats\n";
  ASSERT_TRUE(hog.write_all(burst));

  // The victim's whole session completes while the hog's backlog drains.
  const std::string victim =
      run_scripted_session(f.server->port(), "stats\nquit\n");
  EXPECT_EQ(victim.rfind("ok\tstats\t", 0), 0u) << victim;
  EXPECT_NE(victim.find("bye\n"), std::string::npos);

  // The hog still gets every reply, in order.
  ASSERT_TRUE(hog.write_all("quit\n"));
  hog.shutdown_write();
  const std::string hog_replies = drain(hog);
  std::size_t ok_count = 0;
  for (std::size_t at = hog_replies.find("ok\tstats\t"); at != std::string::npos;
       at = hog_replies.find("ok\tstats\t", at + 1)) {
    ++ok_count;
  }
  EXPECT_EQ(ok_count, 200u);
  EXPECT_NE(hog_replies.find("bye\n"), std::string::npos);
}

// --- Observability over the socket transport. ---

/// One HTTP/1.0 GET against the scrape endpoint; returns the raw response
/// (status line + headers + body).
std::string http_get(std::uint16_t port, const std::string& target) {
  net::Socket sock = net::connect_to("127.0.0.1", port);
  EXPECT_TRUE(sock.write_all("GET " + target + " HTTP/1.0\r\n\r\n"));
  return drain(sock);
}

TEST(ServeNet, MetricsScrapeRacesFourClientsWithoutPerturbingReplies) {
  // The acceptance workload with a scraper in the mix: 4 scripted clients
  // against one mapping while an HTTP client hammers GET /metrics. Every
  // session transcript must stay byte-identical to the golden expectation
  // (scrapes never touch reply bytes), and every scrape must be a valid
  // Prometheus exposition carrying the per-query-type latency quantiles
  // and the substrate-routing counters. This test also runs under the
  // TSan CI job: scrape-side shard merges racing writer sessions is
  // exactly the access pattern the relaxed-atomic design must keep clean.
  ServerFixture f(net::TransportKind::kThreads);
  obs::MetricsHttpServer scraper(/*port=*/0);
  std::thread scraper_thread([&] { scraper.run(); });

  const std::string script = read_file(data_path("serve_session.txt"));
  const std::string expected = read_file(data_path("serve_session.expected"));

  constexpr int kClients = 4;
  std::vector<std::string> transcripts(kClients);
  std::atomic<bool> done{false};
  std::string last_scrape;
  std::thread scrape_client([&] {
    while (!done.load()) {
      const std::string resp = http_get(scraper.port(), "/metrics");
      EXPECT_EQ(resp.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << resp.substr(0, 64);
      last_scrape = resp;
    }
  });
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        transcripts[static_cast<std::size_t>(i)] =
            run_scripted_session(f.server->port(), script);
      });
    }
    for (auto& t : clients) t.join();
  }
  done.store(true);
  scrape_client.join();

  // One more scrape taken after the sessions finished (and before the
  // scraper stops accepting), so the assertions below see their queries
  // for certain — the raced scrapes above only needed to return 200.
  const std::string body = http_get(scraper.port(), "/metrics");
  scraper.request_stop();
  scraper_thread.join();

  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(transcripts[static_cast<std::size_t>(i)], expected)
        << "client " << i << " transcript diverges under scraping";
  }
  EXPECT_GE(scraper.scrapes_served(), 1u);
  EXPECT_NE(body.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(body.find("# TYPE probgraph_queries_total counter"),
            std::string::npos);
  EXPECT_NE(
      body.find("probgraph_query_latency_seconds{type=\"tc\",quantile=\"0.99\"}"),
      std::string::npos);
  EXPECT_NE(body.find("probgraph_query_substrate_total{kind=\"bf\","
                      "orientation=\"dag\"}"),
            std::string::npos);
  EXPECT_NE(body.find("probgraph_session_bytes_total{direction=\"out\"}"),
            std::string::npos);
}

TEST(ServeNet, MetricsHttpRejectsOtherMethodsAndPaths) {
  obs::MetricsHttpServer scraper(/*port=*/0);
  std::thread runner([&] { scraper.run(); });
  EXPECT_EQ(http_get(scraper.port(), "/nope").rfind("HTTP/1.0 404", 0), 0u);
  {
    net::Socket sock = net::connect_to("127.0.0.1", scraper.port());
    ASSERT_TRUE(sock.write_all("POST /metrics HTTP/1.0\r\n\r\n"));
    EXPECT_EQ(drain(sock).rfind("HTTP/1.0 405", 0), 0u);
  }
  scraper.request_stop();
  runner.join();
}

TEST(ServeNet, OverlongSocketFramesCountTheOverlongCause) {
  // The socket transport's oversized-frame path must land in the
  // cause="overlong" bucket — distinct from parse failures — so protocol
  // abuse is tellable from client bugs in the scrape output.
  const obs::Labels overlong{{"cause", "overlong"}};
  const obs::Labels parse{{"cause", "parse"}};
  const std::uint64_t overlong_before =
      counter_value("probgraph_session_errors_total", overlong);
  const std::uint64_t parse_before =
      counter_value("probgraph_session_errors_total", parse);

  net::ServeOptions opts;
  opts.max_line_bytes = 128;
  ServerFixture f(net::TransportKind::kThreads, opts);
  net::Socket sock = net::connect_to("127.0.0.1", f.server->port());
  net::LineReader reader(sock, 1 << 16);

  std::string garbage(4096, 'x');
  garbage += '\n';
  ASSERT_TRUE(sock.write_all(garbage));
  EXPECT_EQ(read_reply_line(reader).rfind("err\t", 0), 0u);
  ASSERT_TRUE(sock.write_all("not-a-verb\nquit\n"));
  EXPECT_EQ(read_reply_line(reader).rfind("err\t", 0), 0u);
  EXPECT_EQ(read_reply_line(reader), "bye");
  f.server->request_stop();
  f.thread.join();

  EXPECT_EQ(counter_value("probgraph_session_errors_total", overlong) -
                overlong_before,
            1u);
  EXPECT_EQ(counter_value("probgraph_session_errors_total", parse) -
                parse_before,
            1u);
}

}  // namespace
}  // namespace probgraph
