// The .pgs snapshot subsystem (src/io/).
//
// Three guarantees under test:
//   1. Round trip: for every SketchKind, a loaded snapshot serves
//      est_intersection / est_jaccard BIT-IDENTICAL to the in-memory build
//      it was saved from, zero-copy out of the mapping.
//   2. Integrity: wrong magic, wrong version, wrong endianness tag,
//      truncation, and payload corruption are all rejected with a
//      descriptive error naming the failed check.
//   3. Format stability: tests/data/golden.pgs (built from
//      tests/data/golden.el with the default config — see
//      GoldenFixture.MatchesFreshBuild for the exact regeneration command)
//      must keep loading with pinned header bytes and unchanged estimates.
#include "io/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/orientation.hpp"

namespace probgraph {
namespace {

namespace fs = std::filesystem;

/// Self-deleting temp file path, unique per test.
struct TempFile {
  explicit TempFile(const std::string& tag)
      : path((fs::temp_directory_path() / ("probgraph_test_" + tag + ".pgs")).string()) {}
  ~TempFile() { std::error_code ec; fs::remove(path, ec); }
  std::string path;
};

CsrGraph test_graph() { return gen::kronecker(8, 8.0, 3); }

ProbGraphConfig config_for(SketchKind kind) {
  ProbGraphConfig cfg;
  cfg.kind = kind;
  cfg.storage_budget = 0.3;
  cfg.bf_hashes = 2;
  cfg.seed = 42;
  return cfg;
}

std::vector<std::byte> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::vector<std::byte> bytes(static_cast<std::size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

void write_bytes(const std::string& path, const std::vector<std::byte>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

void expect_load_fails_with(const std::string& path, const std::string& substr) {
  try {
    (void)io::load_snapshot(path);
    FAIL() << "expected load_snapshot(" << path << ") to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(substr), std::string::npos)
        << "error message '" << e.what() << "' does not mention '" << substr << "'";
  }
}

void expect_bit_identical(const CsrGraph& g, const ProbGraph& built,
                          const ProbGraph& loaded) {
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const VertexId v : g.neighbors(u)) {
      ASSERT_EQ(built.est_intersection(u, v), loaded.est_intersection(u, v))
          << "est_intersection diverges at edge (" << u << ", " << v << ")";
      ASSERT_EQ(built.est_jaccard(u, v), loaded.est_jaccard(u, v))
          << "est_jaccard diverges at edge (" << u << ", " << v << ")";
    }
  }
}

class SnapshotRoundTrip : public ::testing::TestWithParam<SketchKind> {};

TEST_P(SnapshotRoundTrip, ServesBitIdenticalEstimatesZeroCopy) {
  const CsrGraph g = test_graph();
  const ProbGraph built(g, config_for(GetParam()));
  TempFile file(std::string("roundtrip_") + to_string(GetParam()));
  io::save_snapshot(file.path, built);

  const io::Snapshot snap = io::load_snapshot(file.path);
  const ProbGraph& loaded = snap.prob_graph();

  // The served graph and sketches view the mapping, not copies.
  EXPECT_TRUE(snap.graph().is_mapped());
  EXPECT_TRUE(loaded.is_mapped());

  // Structure round-trips exactly.
  ASSERT_EQ(snap.graph().num_vertices(), g.num_vertices());
  ASSERT_TRUE(std::equal(g.offsets().begin(), g.offsets().end(),
                         snap.graph().offsets().begin(), snap.graph().offsets().end()));
  ASSERT_TRUE(std::equal(g.adjacency().begin(), g.adjacency().end(),
                         snap.graph().adjacency().begin(),
                         snap.graph().adjacency().end()));
  EXPECT_EQ(loaded.kind(), built.kind());
  EXPECT_EQ(loaded.bf_bits(), built.bf_bits());
  EXPECT_EQ(loaded.minhash_k(), built.minhash_k());
  EXPECT_EQ(loaded.memory_bytes(), built.memory_bytes());
  EXPECT_EQ(loaded.config().seed, built.config().seed);
  EXPECT_EQ(snap.info().kind, GetParam());
  EXPECT_EQ(snap.info().version, io::kSnapshotVersion);
  EXPECT_FALSE(snap.info().degree_oriented);

  expect_bit_identical(g, built, loaded);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SnapshotRoundTrip,
                         ::testing::Values(SketchKind::kBloomFilter, SketchKind::kKHash,
                                           SketchKind::kOneHash, SketchKind::kKmv),
                         [](const auto& info) { return std::string(to_string(info.param)); });

TEST(Snapshot, DegreeOrientedFlagRoundTrips) {
  const CsrGraph g = test_graph();
  const CsrGraph dag = degree_orient(g);
  ProbGraphConfig cfg = config_for(SketchKind::kBloomFilter);
  cfg.budget_reference_bytes = g.memory_bytes();
  const ProbGraph built(dag, cfg);
  TempFile file("oriented");
  io::save_snapshot(file.path, built, {.degree_oriented = true});

  const io::Snapshot snap = io::load_snapshot(file.path);
  EXPECT_TRUE(snap.info().degree_oriented);
  EXPECT_EQ(snap.prob_graph().config().budget_reference_bytes, g.memory_bytes());
  expect_bit_identical(dag, built, snap.prob_graph());
}

TEST(Snapshot, RelativeMemoryMatchesAfterLoad) {
  const CsrGraph g = test_graph();
  const ProbGraph built(g, config_for(SketchKind::kOneHash));
  TempFile file("relmem");
  io::save_snapshot(file.path, built);
  const io::Snapshot snap = io::load_snapshot(file.path);
  EXPECT_EQ(snap.prob_graph().relative_memory(), built.relative_memory());
}

// --- Integrity rejection. All mutations start from a freshly saved file. ---

class SnapshotIntegrity : public ::testing::Test {
 protected:
  void SetUp() override {
    const CsrGraph g = test_graph();
    const ProbGraph pg(g, config_for(SketchKind::kBloomFilter));
    io::save_snapshot(source_.path, pg);
    bytes_ = read_bytes(source_.path);
    ASSERT_GT(bytes_.size(), 320u);
  }

  TempFile source_{"integrity_source"};
  TempFile mutated_{"integrity_mutated"};
  std::vector<std::byte> bytes_;
};

TEST_F(SnapshotIntegrity, AcceptsThePristineFile) {
  EXPECT_NO_THROW((void)io::load_snapshot(source_.path));
}

TEST_F(SnapshotIntegrity, RejectsBadMagic) {
  bytes_[0] = std::byte{'X'};
  write_bytes(mutated_.path, bytes_);
  expect_load_fails_with(mutated_.path, "magic");
}

TEST_F(SnapshotIntegrity, RejectsUnknownVersion) {
  bytes_[8] = std::byte{0x7f};  // version u32 lives at offset 8
  write_bytes(mutated_.path, bytes_);
  expect_load_fails_with(mutated_.path, "version");
}

TEST_F(SnapshotIntegrity, RejectsForeignEndianness) {
  std::swap(bytes_[12], bytes_[15]);  // endianness tag u32 lives at offset 12
  write_bytes(mutated_.path, bytes_);
  expect_load_fails_with(mutated_.path, "endianness");
}

TEST_F(SnapshotIntegrity, RejectsTruncation) {
  bytes_.resize(bytes_.size() - 64);
  write_bytes(mutated_.path, bytes_);
  expect_load_fails_with(mutated_.path, "size mismatch");
}

TEST_F(SnapshotIntegrity, RejectsTruncationBelowHeader) {
  bytes_.resize(32);
  write_bytes(mutated_.path, bytes_);
  expect_load_fails_with(mutated_.path, "truncated");
}

TEST_F(SnapshotIntegrity, RejectsPayloadCorruption) {
  bytes_.back() = bytes_.back() ^ std::byte{0x01};  // flip one payload bit
  write_bytes(mutated_.path, bytes_);
  expect_load_fails_with(mutated_.path, "checksum");
}

TEST_F(SnapshotIntegrity, RejectsHeaderCorruption) {
  // The checksum covers the header too: a flipped degree_oriented flag
  // (flags u32 at offset 44) must be rejected, not silently served.
  bytes_[44] = bytes_[44] ^ std::byte{0x01};
  write_bytes(mutated_.path, bytes_);
  expect_load_fails_with(mutated_.path, "checksum");
}

TEST_F(SnapshotIntegrity, RejectsSeedCorruption) {
  bytes_[96] = bytes_[96] ^ std::byte{0x01};  // seed u64 lives at offset 96
  write_bytes(mutated_.path, bytes_);
  expect_load_fails_with(mutated_.path, "checksum");
}

TEST_F(SnapshotIntegrity, RejectsEmptyFile) {
  write_bytes(mutated_.path, {});
  EXPECT_THROW((void)io::load_snapshot(mutated_.path), std::runtime_error);
}

TEST(Snapshot, RejectsMissingFile) {
  EXPECT_THROW((void)io::load_snapshot("/nonexistent/probgraph.pgs"), std::runtime_error);
}

// --- Golden fixture: pins the on-disk format across refactors. ---

std::string data_path(const char* name) {
  return std::string(PROBGRAPH_TEST_DATA_DIR) + "/" + name;
}

TEST(GoldenFixture, HeaderBytesArePinned) {
  const std::vector<std::byte> bytes = read_bytes(data_path("golden.pgs"));
  ASSERT_GE(bytes.size(), 16u);
  EXPECT_EQ(std::memcmp(bytes.data(), "PGSNAP01", 8), 0);
  const unsigned char version_le[4] = {1, 0, 0, 0};
  EXPECT_EQ(std::memcmp(bytes.data() + 8, version_le, 4), 0);
  const unsigned char endian_le[4] = {0x04, 0x03, 0x02, 0x01};
  EXPECT_EQ(std::memcmp(bytes.data() + 12, endian_le, 4), 0);
}

TEST(GoldenFixture, MatchesFreshBuild) {
  // Regenerate (only on a deliberate format bump) with:
  //   pgtool build tests/data/golden.el -o tests/data/golden.pgs
  // i.e. the default config: BF sketches, budget 0.25, b = 2, seed 42.
  const io::Snapshot snap = io::load_snapshot(data_path("golden.pgs"));
  EXPECT_EQ(snap.info().version, io::kSnapshotVersion);
  EXPECT_EQ(snap.info().kind, SketchKind::kBloomFilter);
  EXPECT_FALSE(snap.info().degree_oriented);

  const CsrGraph g = io::read_edge_list(data_path("golden.el"));
  ASSERT_EQ(snap.graph().num_vertices(), g.num_vertices());
  ASSERT_EQ(snap.graph().num_directed_edges(), g.num_directed_edges());
  const ProbGraph fresh(g, ProbGraphConfig{});
  expect_bit_identical(g, fresh, snap.prob_graph());
}

}  // namespace
}  // namespace probgraph
