// The .pgs snapshot subsystem (src/io/).
//
// Four guarantees under test:
//   1. Round trip: for every SketchKind, a loaded snapshot serves
//      est_intersection / est_jaccard BIT-IDENTICAL to the in-memory build
//      it was saved from, zero-copy out of the mapping.
//   2. Integrity: wrong magic, wrong version, wrong endianness tag,
//      truncation, and payload corruption are all rejected with a
//      descriptive error naming the failed check.
//   3. Format stability: tests/data/golden.pgs (a frozen VERSION-1 file
//      built from tests/data/golden.el with the default config) must keep
//      loading under the v2 reader with pinned header bytes and unchanged
//      estimates, and tests/data/golden_v2.pgs (a multi-substrate
//      version-2 file — see GoldenFixtureV2.MatchesFreshBuild for the
//      regeneration command) pins the v2 layout the same way.
//   4. Multi-substrate: a v2 file packing several sketch kinds × both
//      orientations serves EVERY substrate bit-identical to the
//      single-substrate build it came from, and malformed substrate
//      combinations are rejected at save time.
#include "io/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/orientation.hpp"

namespace probgraph {
namespace {

namespace fs = std::filesystem;

/// Self-deleting temp file path, unique per test.
struct TempFile {
  explicit TempFile(const std::string& tag)
      : path((fs::temp_directory_path() / ("probgraph_test_" + tag + ".pgs")).string()) {}
  ~TempFile() { std::error_code ec; fs::remove(path, ec); }
  std::string path;
};

CsrGraph test_graph() { return gen::kronecker(8, 8.0, 3); }

ProbGraphConfig config_for(SketchKind kind) {
  ProbGraphConfig cfg;
  cfg.kind = kind;
  cfg.storage_budget = 0.3;
  cfg.bf_hashes = 2;
  cfg.seed = 42;
  return cfg;
}

std::vector<std::byte> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::vector<std::byte> bytes(static_cast<std::size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

void write_bytes(const std::string& path, const std::vector<std::byte>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

void expect_load_fails_with(const std::string& path, const std::string& substr) {
  try {
    (void)io::load_snapshot(path);
    FAIL() << "expected load_snapshot(" << path << ") to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(substr), std::string::npos)
        << "error message '" << e.what() << "' does not mention '" << substr << "'";
  }
}

void expect_bit_identical(const CsrGraph& g, const ProbGraph& built,
                          const ProbGraph& loaded) {
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const VertexId v : g.neighbors(u)) {
      ASSERT_EQ(built.est_intersection(u, v), loaded.est_intersection(u, v))
          << "est_intersection diverges at edge (" << u << ", " << v << ")";
      ASSERT_EQ(built.est_jaccard(u, v), loaded.est_jaccard(u, v))
          << "est_jaccard diverges at edge (" << u << ", " << v << ")";
    }
  }
}

class SnapshotRoundTrip : public ::testing::TestWithParam<SketchKind> {};

TEST_P(SnapshotRoundTrip, ServesBitIdenticalEstimatesZeroCopy) {
  const CsrGraph g = test_graph();
  const ProbGraph built(g, config_for(GetParam()));
  TempFile file(std::string("roundtrip_") + to_string(GetParam()));
  io::save_snapshot(file.path, built);

  const io::Snapshot snap = io::load_snapshot(file.path);
  const ProbGraph& loaded = snap.prob_graph();

  // The served graph and sketches view the mapping, not copies.
  EXPECT_TRUE(snap.graph().is_mapped());
  EXPECT_TRUE(loaded.is_mapped());

  // Structure round-trips exactly.
  ASSERT_EQ(snap.graph().num_vertices(), g.num_vertices());
  ASSERT_TRUE(std::equal(g.offsets().begin(), g.offsets().end(),
                         snap.graph().offsets().begin(), snap.graph().offsets().end()));
  ASSERT_TRUE(std::equal(g.adjacency().begin(), g.adjacency().end(),
                         snap.graph().adjacency().begin(),
                         snap.graph().adjacency().end()));
  EXPECT_EQ(loaded.kind(), built.kind());
  EXPECT_EQ(loaded.bf_bits(), built.bf_bits());
  EXPECT_EQ(loaded.minhash_k(), built.minhash_k());
  EXPECT_EQ(loaded.memory_bytes(), built.memory_bytes());
  EXPECT_EQ(loaded.config().seed, built.config().seed);
  EXPECT_EQ(snap.info().kind, GetParam());
  EXPECT_EQ(snap.info().version, io::kSnapshotVersion);
  EXPECT_FALSE(snap.info().degree_oriented);

  // A single-substrate v2 file still enumerates itself.
  ASSERT_EQ(snap.num_substrates(), 1u);
  ASSERT_EQ(snap.info().substrates.size(), 1u);
  EXPECT_EQ(snap.info().substrates[0].kind, GetParam());
  EXPECT_FALSE(snap.info().substrates[0].degree_oriented);
  EXPECT_EQ(snap.find_substrate(GetParam(), false), &loaded);
  EXPECT_EQ(snap.find_substrate(GetParam(), true), nullptr);
  EXPECT_EQ(snap.sole_substrate(false), &loaded);
  EXPECT_EQ(snap.graph_for(true), nullptr);

  expect_bit_identical(g, built, loaded);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SnapshotRoundTrip,
                         ::testing::Values(SketchKind::kBloomFilter, SketchKind::kKHash,
                                           SketchKind::kOneHash, SketchKind::kKmv),
                         [](const auto& info) { return std::string(to_string(info.param)); });

TEST(Snapshot, DegreeOrientedFlagRoundTrips) {
  const CsrGraph g = test_graph();
  const CsrGraph dag = degree_orient(g);
  ProbGraphConfig cfg = config_for(SketchKind::kBloomFilter);
  cfg.budget_reference_bytes = g.memory_bytes();
  const ProbGraph built(dag, cfg);
  TempFile file("oriented");
  io::save_snapshot(file.path, built, {.degree_oriented = true});

  const io::Snapshot snap = io::load_snapshot(file.path);
  EXPECT_TRUE(snap.info().degree_oriented);
  EXPECT_EQ(snap.prob_graph().config().budget_reference_bytes, g.memory_bytes());
  expect_bit_identical(dag, built, snap.prob_graph());
}

TEST(Snapshot, RelativeMemoryMatchesAfterLoad) {
  const CsrGraph g = test_graph();
  const ProbGraph built(g, config_for(SketchKind::kOneHash));
  TempFile file("relmem");
  io::save_snapshot(file.path, built);
  const io::Snapshot snap = io::load_snapshot(file.path);
  EXPECT_EQ(snap.prob_graph().relative_memory(), built.relative_memory());
}

// --- Integrity rejection. All mutations start from a freshly saved file. ---

class SnapshotIntegrity : public ::testing::Test {
 protected:
  void SetUp() override {
    const CsrGraph g = test_graph();
    const ProbGraph pg(g, config_for(SketchKind::kBloomFilter));
    io::save_snapshot(source_.path, pg);
    bytes_ = read_bytes(source_.path);
    ASSERT_GT(bytes_.size(), 320u);
  }

  TempFile source_{"integrity_source"};
  TempFile mutated_{"integrity_mutated"};
  std::vector<std::byte> bytes_;
};

TEST_F(SnapshotIntegrity, AcceptsThePristineFile) {
  EXPECT_NO_THROW((void)io::load_snapshot(source_.path));
}

TEST_F(SnapshotIntegrity, RejectsBadMagic) {
  bytes_[0] = std::byte{'X'};
  write_bytes(mutated_.path, bytes_);
  expect_load_fails_with(mutated_.path, "magic");
}

TEST_F(SnapshotIntegrity, RejectsUnknownVersion) {
  bytes_[8] = std::byte{0x7f};  // version u32 lives at offset 8
  write_bytes(mutated_.path, bytes_);
  expect_load_fails_with(mutated_.path, "version");
}

TEST_F(SnapshotIntegrity, RejectsForeignEndianness) {
  std::swap(bytes_[12], bytes_[15]);  // endianness tag u32 lives at offset 12
  write_bytes(mutated_.path, bytes_);
  expect_load_fails_with(mutated_.path, "endianness");
}

TEST_F(SnapshotIntegrity, RejectsTruncation) {
  bytes_.resize(bytes_.size() - 64);
  write_bytes(mutated_.path, bytes_);
  expect_load_fails_with(mutated_.path, "size mismatch");
}

TEST_F(SnapshotIntegrity, RejectsTruncationBelowHeader) {
  bytes_.resize(32);
  write_bytes(mutated_.path, bytes_);
  expect_load_fails_with(mutated_.path, "truncated");
}

TEST_F(SnapshotIntegrity, RejectsPayloadCorruption) {
  bytes_.back() = bytes_.back() ^ std::byte{0x01};  // flip one payload bit
  write_bytes(mutated_.path, bytes_);
  expect_load_fails_with(mutated_.path, "checksum");
}

TEST_F(SnapshotIntegrity, RejectsHeaderCorruption) {
  // The checksum covers the header too: a flipped degree_oriented flag
  // (flags u32 at offset 44) must be rejected, not silently served.
  bytes_[44] = bytes_[44] ^ std::byte{0x01};
  write_bytes(mutated_.path, bytes_);
  expect_load_fails_with(mutated_.path, "checksum");
}

TEST_F(SnapshotIntegrity, RejectsSeedCorruption) {
  bytes_[96] = bytes_[96] ^ std::byte{0x01};  // seed u64 lives at offset 96
  write_bytes(mutated_.path, bytes_);
  expect_load_fails_with(mutated_.path, "checksum");
}

TEST_F(SnapshotIntegrity, RejectsEmptyFile) {
  write_bytes(mutated_.path, {});
  EXPECT_THROW((void)io::load_snapshot(mutated_.path), std::runtime_error);
}

TEST(Snapshot, RejectsMissingFile) {
  EXPECT_THROW((void)io::load_snapshot("/nonexistent/probgraph.pgs"), std::runtime_error);
}

// --- Multi-substrate v2 files. ---

constexpr SketchKind kAllKinds[] = {SketchKind::kBloomFilter, SketchKind::kKHash,
                                    SketchKind::kOneHash, SketchKind::kKmv};

/// Every (kind, orientation) substrate a `--kinds bf,kh,1h,kmv --orient
/// both` build would pack, via the same io::build_substrates helper
/// pgtool uses (kind-major, symmetric first, DAG budget-referenced to
/// the symmetric CSR).
io::SubstrateSet all_substrates(const CsrGraph& g) {
  return io::build_substrates(g, kAllKinds, /*symmetric=*/true, /*degree_oriented=*/true,
                              config_for(SketchKind::kBloomFilter));
}

TEST(MultiSubstrate, RoundTripIsBitIdenticalPerKindAndOrientation) {
  const CsrGraph g = test_graph();
  const io::SubstrateSet all = all_substrates(g);
  TempFile file("multi_all");
  io::save_snapshot(file.path, all.substrates);

  const io::Snapshot snap = io::load_snapshot(file.path);
  EXPECT_EQ(snap.info().version, io::kSnapshotVersion);
  ASSERT_EQ(snap.num_substrates(), all.substrates.size());
  ASSERT_EQ(snap.info().substrates.size(), all.substrates.size());
  ASSERT_NE(snap.graph_for(false), nullptr);
  ASSERT_NE(snap.graph_for(true), nullptr);
  // One shared CSR per orientation, both zero-copy views of the mapping.
  EXPECT_TRUE(snap.graph_for(false)->is_mapped());
  EXPECT_TRUE(snap.graph_for(true)->is_mapped());
  ASSERT_EQ(snap.graph_for(true)->num_directed_edges(), all.dag->num_directed_edges());

  for (std::size_t i = 0; i < all.substrates.size(); ++i) {
    const SketchKind kind = all.substrates[i].pg->kind();
    const bool oriented = all.substrates[i].degree_oriented;
    EXPECT_EQ(snap.info().substrates[i].kind, kind);
    EXPECT_EQ(snap.info().substrates[i].degree_oriented, oriented);
    const ProbGraph* loaded = snap.find_substrate(kind, oriented);
    ASSERT_NE(loaded, nullptr) << to_string(kind) << (oriented ? "/dag" : "/sym");
    EXPECT_TRUE(loaded->is_mapped());
    expect_bit_identical(oriented ? *all.dag : g, *all.substrates[i].pg, *loaded);
  }
  // The primary substrate is the first one listed.
  EXPECT_EQ(&snap.prob_graph(), snap.find_substrate(SketchKind::kBloomFilter, false));
  EXPECT_EQ(snap.info().kind, SketchKind::kBloomFilter);
  EXPECT_FALSE(snap.info().degree_oriented);
  // With four kinds per orientation there is no sole substrate.
  EXPECT_EQ(snap.sole_substrate(false), nullptr);
  EXPECT_EQ(snap.sole_substrate(true), nullptr);
}

TEST(MultiSubstrate, DescribeSubstratesNamesEveryCarriedOne) {
  const CsrGraph g = test_graph();
  const io::SubstrateSet all = all_substrates(g);
  TempFile file("multi_describe");
  io::save_snapshot(file.path, all.substrates);
  const io::Snapshot snap = io::load_snapshot(file.path);
  EXPECT_EQ(io::describe_substrates(snap.info().substrates),
            "BF/sym, BF/dag, kH/sym, kH/dag, 1H/sym, 1H/dag, KMV/sym, KMV/dag");
}

TEST(MultiSubstrate, OrientedPrimaryPlusSymmetricSecondary) {
  // Primary = DAG substrate (a `--kinds ... --orient` build shape): the
  // header flags say degree-oriented while the file still carries and
  // serves the symmetric substrate.
  const CsrGraph g = test_graph();
  const CsrGraph dag = degree_orient(g);
  ProbGraphConfig dag_cfg = config_for(SketchKind::kBloomFilter);
  dag_cfg.budget_reference_bytes = g.memory_bytes();
  const ProbGraph dag_pg(dag, dag_cfg);
  const ProbGraph sym_pg(g, config_for(SketchKind::kKmv));
  const io::SnapshotSubstrate subs[] = {{&dag_pg, true}, {&sym_pg, false}};
  TempFile file("multi_oriented_primary");
  io::save_snapshot(file.path, subs);

  const io::Snapshot snap = io::load_snapshot(file.path);
  EXPECT_TRUE(snap.info().degree_oriented);
  EXPECT_EQ(&snap.graph(), snap.graph_for(true));
  ASSERT_NE(snap.find_substrate(SketchKind::kKmv, false), nullptr);
  expect_bit_identical(g, sym_pg, *snap.find_substrate(SketchKind::kKmv, false));
  expect_bit_identical(dag, dag_pg, snap.prob_graph());
  EXPECT_EQ(snap.sole_substrate(false), snap.find_substrate(SketchKind::kKmv, false));
}

TEST(MultiSubstrate, SaveRejectsMalformedSubstrateLists) {
  const CsrGraph g = test_graph();
  const ProbGraph a(g, config_for(SketchKind::kBloomFilter));
  const ProbGraph b(g, config_for(SketchKind::kBloomFilter));
  const CsrGraph g2 = test_graph();
  const ProbGraph c(g2, config_for(SketchKind::kKmv));
  TempFile file("multi_reject");

  EXPECT_THROW(io::save_snapshot(file.path, std::span<const io::SnapshotSubstrate>{}),
               std::invalid_argument);
  {
    // Duplicate (kind, orientation).
    const io::SnapshotSubstrate subs[] = {{&a, false}, {&b, false}};
    EXPECT_THROW(io::save_snapshot(file.path, subs), std::invalid_argument);
  }
  {
    // Same orientation over two different graph instances.
    const io::SnapshotSubstrate subs[] = {{&a, false}, {&c, false}};
    EXPECT_THROW(io::save_snapshot(file.path, subs), std::invalid_argument);
  }
  {
    // A "DAG" that is not an orientation of the symmetric graph (here:
    // the DAG of a different same-size graph — the edge counts disagree).
    // Without this check the writer could emit a file whose exact counts
    // come from an unrelated graph.
    const CsrGraph other = gen::kronecker(8, 4.0, 3);
    ASSERT_EQ(other.num_vertices(), g.num_vertices());
    const CsrGraph other_dag = degree_orient(other);
    ProbGraphConfig cfg = config_for(SketchKind::kBloomFilter);
    cfg.budget_reference_bytes = other.memory_bytes();
    const ProbGraph wrong_dag(other_dag, cfg);
    const io::SnapshotSubstrate subs[] = {{&a, false}, {&wrong_dag, true}};
    EXPECT_THROW(io::save_snapshot(file.path, subs), std::invalid_argument);
  }
}

TEST(MultiSubstrate, DirectoryCorruptionIsRejectedByTheChecksum) {
  const CsrGraph g = test_graph();
  const ProbGraph sym(g, config_for(SketchKind::kBloomFilter));
  const CsrGraph dag = degree_orient(g);
  ProbGraphConfig dag_cfg = config_for(SketchKind::kBloomFilter);
  dag_cfg.budget_reference_bytes = g.memory_bytes();
  const ProbGraph dag_pg(dag, dag_cfg);
  const io::SnapshotSubstrate subs[] = {{&sym, false}, {&dag_pg, true}};
  TempFile source("multi_corrupt_src");
  TempFile mutated("multi_corrupt_mut");
  io::save_snapshot(source.path, subs);

  std::vector<std::byte> bytes = read_bytes(source.path);
  // The substrate directory is section index 7; its table entry starts at
  // 136 + 7*24 and the offset field sits 8 bytes in. Flipping a byte of
  // the directory payload itself must be caught by the whole-file
  // checksum; corrupting its table entry likewise.
  std::uint64_t dir_offset = 0;
  std::memcpy(&dir_offset, bytes.data() + 136 + 7 * 24 + 8, sizeof dir_offset);
  ASSERT_LT(dir_offset, bytes.size());
  bytes[dir_offset] = bytes[dir_offset] ^ std::byte{0x01};
  write_bytes(mutated.path, bytes);
  expect_load_fails_with(mutated.path, "checksum");
}

// --- Golden fixtures: pin the on-disk formats across refactors. ---

std::string data_path(const char* name) {
  return std::string(PROBGRAPH_TEST_DATA_DIR) + "/" + name;
}

TEST(GoldenFixture, HeaderBytesArePinned) {
  const std::vector<std::byte> bytes = read_bytes(data_path("golden.pgs"));
  ASSERT_GE(bytes.size(), 16u);
  EXPECT_EQ(std::memcmp(bytes.data(), "PGSNAP01", 8), 0);
  const unsigned char version_le[4] = {1, 0, 0, 0};
  EXPECT_EQ(std::memcmp(bytes.data() + 8, version_le, 4), 0);
  const unsigned char endian_le[4] = {0x04, 0x03, 0x02, 0x01};
  EXPECT_EQ(std::memcmp(bytes.data() + 12, endian_le, 4), 0);
}

TEST(GoldenFixture, MatchesFreshBuild) {
  // tests/data/golden.pgs is a FROZEN version-1 file (BF sketches, budget
  // 0.25, b = 2, seed 42, written by the PR-2 writer) — it is never
  // regenerated; it pins the v1 read path of the v2 loader.
  const io::Snapshot snap = io::load_snapshot(data_path("golden.pgs"));
  EXPECT_EQ(snap.info().version, 1u);
  EXPECT_EQ(snap.info().kind, SketchKind::kBloomFilter);
  EXPECT_FALSE(snap.info().degree_oriented);
  ASSERT_EQ(snap.info().substrates.size(), 1u);
  EXPECT_EQ(snap.info().substrates[0].kind, SketchKind::kBloomFilter);
  EXPECT_FALSE(snap.info().substrates[0].degree_oriented);

  const CsrGraph g = io::read_edge_list(data_path("golden.el"));
  ASSERT_EQ(snap.graph().num_vertices(), g.num_vertices());
  ASSERT_EQ(snap.graph().num_directed_edges(), g.num_directed_edges());
  const ProbGraph fresh(g, ProbGraphConfig{});
  expect_bit_identical(g, fresh, snap.prob_graph());
}

TEST(GoldenFixtureV2, HeaderBytesArePinned) {
  const std::vector<std::byte> bytes = read_bytes(data_path("golden_v2.pgs"));
  ASSERT_GE(bytes.size(), 16u);
  EXPECT_EQ(std::memcmp(bytes.data(), "PGSNAP01", 8), 0);
  const unsigned char version_le[4] = {2, 0, 0, 0};
  EXPECT_EQ(std::memcmp(bytes.data() + 8, version_le, 4), 0);
  const unsigned char endian_le[4] = {0x04, 0x03, 0x02, 0x01};
  EXPECT_EQ(std::memcmp(bytes.data() + 12, endian_le, 4), 0);
}

TEST(GoldenFixtureV2, MatchesFreshBuild) {
  // Regenerate (only on a deliberate format bump) with:
  //   pgtool build tests/data/golden.el --kinds bf,kmv --orient both
  //     -o tests/data/golden_v2.pgs
  // i.e. default parameters (budget 0.25, b = 2, seed 42) for all four
  // substrates: BF/sym (primary), BF/dag, KMV/sym, KMV/dag.
  const io::Snapshot snap = io::load_snapshot(data_path("golden_v2.pgs"));
  EXPECT_EQ(snap.info().version, 2u);
  EXPECT_EQ(snap.info().kind, SketchKind::kBloomFilter);
  EXPECT_FALSE(snap.info().degree_oriented);
  EXPECT_EQ(io::describe_substrates(snap.info().substrates),
            "BF/sym, BF/dag, KMV/sym, KMV/dag");

  const CsrGraph g = io::read_edge_list(data_path("golden.el"));
  const CsrGraph dag = degree_orient(g);
  for (const SketchKind kind : {SketchKind::kBloomFilter, SketchKind::kKmv}) {
    ProbGraphConfig cfg;
    cfg.kind = kind;
    const ProbGraph fresh_sym(g, cfg);
    ASSERT_NE(snap.find_substrate(kind, false), nullptr);
    expect_bit_identical(g, fresh_sym, *snap.find_substrate(kind, false));

    cfg.budget_reference_bytes = g.memory_bytes();
    const ProbGraph fresh_dag(dag, cfg);
    ASSERT_NE(snap.find_substrate(kind, true), nullptr);
    expect_bit_identical(dag, fresh_dag, *snap.find_substrate(kind, true));
  }
}

}  // namespace
}  // namespace probgraph
