#include "util/special_functions.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace probgraph::util {
namespace {

TEST(LogBeta, MatchesClosedForms) {
  // B(1,1) = 1, B(2,3) = 1/12, B(0.5,0.5) = π.
  EXPECT_NEAR(log_beta(1, 1), 0.0, 1e-12);
  EXPECT_NEAR(log_beta(2, 3), std::log(1.0 / 12.0), 1e-12);
  EXPECT_NEAR(log_beta(0.5, 0.5), std::log(M_PI), 1e-12);
}

TEST(RegIncBeta, BoundaryValues) {
  EXPECT_DOUBLE_EQ(reg_inc_beta(2, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(reg_inc_beta(2, 3, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(reg_inc_beta(2, 3, -0.5), 0.0);
  EXPECT_DOUBLE_EQ(reg_inc_beta(2, 3, 1.5), 1.0);
}

TEST(RegIncBeta, UniformCase) {
  // I_x(1, 1) = x: Beta(1,1) is the uniform distribution.
  for (double x = 0.1; x < 1.0; x += 0.1) {
    EXPECT_NEAR(reg_inc_beta(1, 1, x), x, 1e-12);
  }
}

TEST(RegIncBeta, ClosedFormQuadratic) {
  // I_x(2, 1) = x² and I_x(1, 2) = 1-(1-x)² = 2x - x².
  for (double x = 0.05; x < 1.0; x += 0.05) {
    EXPECT_NEAR(reg_inc_beta(2, 1, x), x * x, 1e-12);
    EXPECT_NEAR(reg_inc_beta(1, 2, x), 2 * x - x * x, 1e-12);
  }
}

TEST(RegIncBeta, SymmetryIdentity) {
  // I_x(a, b) = 1 − I_{1−x}(b, a).
  for (double x = 0.1; x < 1.0; x += 0.2) {
    EXPECT_NEAR(reg_inc_beta(3.5, 2.25, x), 1.0 - reg_inc_beta(2.25, 3.5, 1.0 - x), 1e-12);
  }
}

TEST(RegIncBeta, IsMonotoneInX) {
  double prev = 0.0;
  for (double x = 0.0; x <= 1.0; x += 0.01) {
    const double cur = reg_inc_beta(5, 7, x);
    EXPECT_GE(cur, prev - 1e-14);
    prev = cur;
  }
}

TEST(RegIncBeta, MedianOfSymmetricBeta) {
  // Beta(a, a) is symmetric around 1/2.
  EXPECT_NEAR(reg_inc_beta(4, 4, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(reg_inc_beta(10, 10, 0.5), 0.5, 1e-12);
}

TEST(BinomialCdf, MatchesDirectSummation) {
  // Bin(10, 0.3): compare against Σ C(10,i) p^i (1-p)^(10-i).
  const double n = 10, p = 0.3;
  double direct = 0.0;
  double log_fact[16];
  log_fact[0] = 0.0;
  for (int i = 1; i < 16; ++i) log_fact[i] = log_fact[i - 1] + std::log(i);
  for (int k = 0; k <= 10; ++k) {
    const double log_choose = log_fact[10] - log_fact[k] - log_fact[10 - k];
    direct += std::exp(log_choose + k * std::log(p) + (10 - k) * std::log(1 - p));
    EXPECT_NEAR(binomial_cdf(k, n, p), direct, 1e-10) << "k=" << k;
  }
}

TEST(BinomialCdf, TailsAreExact) {
  EXPECT_DOUBLE_EQ(binomial_cdf(-1, 5, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(binomial_cdf(5, 5, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(binomial_cdf(99, 5, 0.5), 1.0);
}

}  // namespace
}  // namespace probgraph::util
