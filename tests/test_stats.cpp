#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace probgraph::util {
namespace {

TEST(Mean, BasicAndEmpty) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Variance, MatchesHandComputation) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Sample variance with Bessel correction: Σ(x-μ)²/(n−1) = 32/7.
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Variance, DegenerateInputsAreZero) {
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{5.0}), 0.0);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{}), 0.0);
}

TEST(Quantile, InterpolatesLinearly) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0 / 3.0), 2.0);
}

TEST(Quantile, ClampsOutOfRangeQ) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 2.0), 2.0);
}

TEST(BoxStats, FiveNumberSummary) {
  const std::vector<double> xs{7.0, 1.0, 3.0, 5.0, 9.0};
  const BoxStats s = box_stats(xs);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.q1, 3.0);
  EXPECT_DOUBLE_EQ(s.q3, 7.0);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_EQ(s.count, 5u);
}

TEST(BoxStats, EmptyInput) {
  const BoxStats s = box_stats({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.median, 0.0);
}

TEST(BootstrapCi, BracketsTheMean) {
  Xoshiro256 rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(10.0 + rng.uniform());
  const MeanCi ci = bootstrap_mean_ci(xs, 500, 42);
  EXPECT_LE(ci.lo, ci.mean);
  EXPECT_GE(ci.hi, ci.mean);
  EXPECT_NEAR(ci.mean, 10.5, 0.1);
  // CI of a tight distribution around 10.5 must be narrow.
  EXPECT_LT(ci.hi - ci.lo, 0.2);
}

TEST(BootstrapCi, SingleSampleCollapses) {
  const std::vector<double> xs{3.0};
  const MeanCi ci = bootstrap_mean_ci(xs);
  EXPECT_DOUBLE_EQ(ci.lo, 3.0);
  EXPECT_DOUBLE_EQ(ci.hi, 3.0);
}

TEST(BootstrapCi, IsDeterministicUnderSeed) {
  std::vector<double> xs;
  Xoshiro256 rng(5);
  for (int i = 0; i < 50; ++i) xs.push_back(rng.uniform());
  const MeanCi a = bootstrap_mean_ci(xs, 300, 9);
  const MeanCi b = bootstrap_mean_ci(xs, 300, 9);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

}  // namespace
}  // namespace probgraph::util
