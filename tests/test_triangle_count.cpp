#include "algorithms/triangle_count.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/orientation.hpp"

namespace probgraph::algo {
namespace {

/// O(n³) oracle for small graphs.
std::uint64_t brute_force_tc(const CsrGraph& g) {
  std::uint64_t count = 0;
  const VertexId n = g.num_vertices();
  for (VertexId a = 0; a < n; ++a) {
    for (VertexId b = a + 1; b < n; ++b) {
      if (!g.has_edge(a, b)) continue;
      for (VertexId c = b + 1; c < n; ++c) {
        if (g.has_edge(a, c) && g.has_edge(b, c)) ++count;
      }
    }
  }
  return count;
}

TEST(TriangleCountExact, ClosedFormOracles) {
  // K_n has C(n,3) triangles.
  EXPECT_EQ(triangle_count_exact(gen::complete(10)), 120u);
  EXPECT_EQ(triangle_count_exact(gen::complete(3)), 1u);
  // Triangle-free families.
  EXPECT_EQ(triangle_count_exact(gen::star(50)), 0u);
  EXPECT_EQ(triangle_count_exact(gen::path(50)), 0u);
  EXPECT_EQ(triangle_count_exact(gen::cycle(50)), 0u);
  EXPECT_EQ(triangle_count_exact(gen::complete_bipartite(7, 9)), 0u);
  // 5 disjoint K_4s: 5 · C(4,3) = 20.
  EXPECT_EQ(triangle_count_exact(gen::clique_chain(5, 4)), 20u);
}

TEST(TriangleCountExact, EmptyAndTinyGraphs) {
  EXPECT_EQ(triangle_count_exact(GraphBuilder::from_edges({}, 5)), 0u);
  EXPECT_EQ(triangle_count_exact(GraphBuilder::from_edges({{0, 1}})), 0u);
}

TEST(TriangleCountExact, KernelsAgreeOnRandomGraphs) {
  const CsrGraph g = gen::kronecker(10, 12.0, 31);
  const auto merge = triangle_count_exact(g, ExactIntersect::kMerge);
  const auto gallop = triangle_count_exact(g, ExactIntersect::kGallop);
  const auto adaptive = triangle_count_exact(g, ExactIntersect::kAdaptive);
  EXPECT_EQ(merge, gallop);
  EXPECT_EQ(merge, adaptive);
}

TEST(TriangleCountExact, MatchesBruteForceOnSmallRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const CsrGraph g = gen::erdos_renyi(60, 0.15, seed);
    EXPECT_EQ(triangle_count_exact(g), brute_force_tc(g)) << "seed " << seed;
  }
}

TEST(TriangleCountExact, OrientedEntryPointMatches) {
  const CsrGraph g = gen::kronecker(9, 8.0, 7);
  const CsrGraph dag = degree_orient(g);
  EXPECT_EQ(triangle_count_exact(g), triangle_count_exact_oriented(dag));
}

class TcSketchSweep : public ::testing::TestWithParam<SketchKind> {};

TEST_P(TcSketchSweep, OrientedEstimateTracksExact) {
  const CsrGraph g = gen::kronecker(11, 16.0, 13);
  const auto exact = static_cast<double>(triangle_count_exact(g));
  ASSERT_GT(exact, 0.0);

  const CsrGraph dag = degree_orient(g);
  ProbGraphConfig cfg;
  cfg.kind = GetParam();
  cfg.storage_budget = 0.33;
  cfg.budget_reference_bytes = g.memory_bytes();  // s is relative to G, not the DAG
  cfg.bf_hashes = 1;
  // Derived k on this small DAG would be 2–4 — the regime the paper flags
  // as needing "more careful parametrization" (§VIII-C). Pin a modest k.
  if (GetParam() != SketchKind::kBloomFilter) cfg.minhash_k = 16;
  // Single-hash sketches (1H, KMV) correlate errors across all edges of one
  // build, so a single seed can land far off; average a few builds, which
  // is the regime the paper's per-graph accuracy claims describe.
  double est = 0.0;
  constexpr int kSeeds = 5;
  for (int s = 0; s < kSeeds; ++s) {
    cfg.seed = 1 + s;
    const ProbGraph pg(dag, cfg);
    est += triangle_count_probgraph(pg, TcMode::kOriented);
  }
  est /= kSeeds;
  // §VIII headline: accuracy above 90% for many inputs; we allow 35%
  // relative error to keep the test robust across all four sketch kinds.
  EXPECT_NEAR(est / exact, 1.0, 0.35) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, TcSketchSweep,
                         ::testing::Values(SketchKind::kBloomFilter, SketchKind::kKHash,
                                           SketchKind::kOneHash, SketchKind::kKmv),
                         [](const auto& info) { return to_string(info.param); });

TEST(TriangleCountProbGraph, FullModeMatchesTheoryEstimator) {
  // TĈ = ⅓ Σ_{(u,v)∈E} est|N_u ∩ N_v| over full neighborhoods.
  const CsrGraph g = gen::kronecker(10, 12.0, 19);
  const auto exact = static_cast<double>(triangle_count_exact(g));
  ProbGraphConfig cfg;
  cfg.storage_budget = 0.33;
  cfg.bf_hashes = 1;
  cfg.seed = 4;
  const ProbGraph pg(g, cfg);
  const double est = triangle_count_probgraph(pg, TcMode::kFull);
  // Full-neighborhood BF AND inflates on skewed graphs at tight budgets
  // (hash collisions between hub neighborhoods); the paper reports the same
  // overestimation tendency for AND on dense inputs (§VIII-B).
  EXPECT_NEAR(est / exact, 1.0, 0.6);
}

TEST(TriangleCountProbGraph, ExactOnCompleteGraphWithHugeSketch) {
  // With an over-provisioned 1-hash sketch (k >= d), MinHash keeps the whole
  // neighborhood and the estimate must be nearly exact.
  const CsrGraph g = gen::complete(32);
  const CsrGraph dag = degree_orient(g);
  ProbGraphConfig cfg;
  cfg.kind = SketchKind::kOneHash;
  cfg.minhash_k = 64;
  const ProbGraph pg(dag, cfg);
  const double est = triangle_count_probgraph(pg, TcMode::kOriented);
  EXPECT_NEAR(est, 4960.0, 4960.0 * 0.02);  // C(32,3)
}

TEST(TriangleCountProbGraph, ZeroOnTriangleFreeWithSaturatedSketch) {
  const CsrGraph dag = degree_orient(gen::star(64));
  ProbGraphConfig cfg;
  cfg.kind = SketchKind::kOneHash;
  cfg.minhash_k = 128;
  const ProbGraph pg(dag, cfg);
  EXPECT_DOUBLE_EQ(triangle_count_probgraph(pg, TcMode::kOriented), 0.0);
}

}  // namespace
}  // namespace probgraph::algo
