#include "algorithms/vertex_similarity.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace probgraph::algo {
namespace {

// Fixture graph:
//   0 - 1, 0 - 2, 1 - 2   (triangle)
//   1 - 3, 2 - 3          (3 closes a diamond with 1, 2)
//   3 - 4                 (pendant)
CsrGraph diamond() {
  return GraphBuilder::from_edges({{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {3, 4}});
}

TEST(SimilarityExact, CommonNeighbors) {
  const CsrGraph g = diamond();
  // N0 = {1,2}, N3 = {1,2,4} → 2 common.
  EXPECT_DOUBLE_EQ(similarity_exact(g, 0, 3, SimilarityMeasure::kCommonNeighbors), 2.0);
  // N1 = {0,2,3}, N2 = {0,1,3} → {0,3}.
  EXPECT_DOUBLE_EQ(similarity_exact(g, 1, 2, SimilarityMeasure::kCommonNeighbors), 2.0);
  EXPECT_DOUBLE_EQ(similarity_exact(g, 0, 4, SimilarityMeasure::kCommonNeighbors), 0.0);
}

TEST(SimilarityExact, Jaccard) {
  const CsrGraph g = diamond();
  // |N0 ∩ N3| = 2, |N0 ∪ N3| = 3.
  EXPECT_DOUBLE_EQ(similarity_exact(g, 0, 3, SimilarityMeasure::kJaccard), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(similarity_exact(g, 1, 2, SimilarityMeasure::kJaccard), 0.5);
}

TEST(SimilarityExact, Overlap) {
  const CsrGraph g = diamond();
  // |N0 ∩ N3| / min(2, 3) = 1.
  EXPECT_DOUBLE_EQ(similarity_exact(g, 0, 3, SimilarityMeasure::kOverlap), 1.0);
}

TEST(SimilarityExact, TotalNeighbors) {
  const CsrGraph g = diamond();
  EXPECT_DOUBLE_EQ(similarity_exact(g, 0, 3, SimilarityMeasure::kTotalNeighbors), 3.0);
}

TEST(SimilarityExact, AdamicAdarAndResourceAllocation) {
  const CsrGraph g = diamond();
  // Common neighbors of 0 and 3 are {1, 2}, both of degree 3.
  const double aa = 2.0 / std::log(3.0);
  const double ra = 2.0 / 3.0;
  EXPECT_NEAR(similarity_exact(g, 0, 3, SimilarityMeasure::kAdamicAdar), aa, 1e-12);
  EXPECT_NEAR(similarity_exact(g, 0, 3, SimilarityMeasure::kResourceAllocation), ra, 1e-12);
}

TEST(SimilarityExact, AdamicAdarIgnoresDegreeOneCommonNeighbors) {
  // 0 - 1 - 2 path: common neighbor of 0 and 2 is 1 (degree 2).
  const CsrGraph g = GraphBuilder::from_edges({{0, 1}, {1, 2}});
  EXPECT_NEAR(similarity_exact(g, 0, 2, SimilarityMeasure::kAdamicAdar), 1.0 / std::log(2.0),
              1e-12);
}

TEST(SimilarityExact, IsSymmetric) {
  const CsrGraph g = diamond();
  for (const auto m :
       {SimilarityMeasure::kJaccard, SimilarityMeasure::kOverlap,
        SimilarityMeasure::kCommonNeighbors, SimilarityMeasure::kTotalNeighbors,
        SimilarityMeasure::kAdamicAdar, SimilarityMeasure::kResourceAllocation}) {
    EXPECT_DOUBLE_EQ(similarity_exact(g, 0, 3, m), similarity_exact(g, 3, 0, m))
        << to_string(m);
  }
}

TEST(SimilarityExact, ToStringNames) {
  EXPECT_STREQ(to_string(SimilarityMeasure::kJaccard), "Jaccard");
  EXPECT_STREQ(to_string(SimilarityMeasure::kResourceAllocation), "ResourceAllocation");
}

class SimilarityPgSweep : public ::testing::TestWithParam<SketchKind> {};

TEST_P(SimilarityPgSweep, TracksExactOnDenseGraph) {
  const CsrGraph g = gen::complete(48);
  ProbGraphConfig cfg;
  cfg.kind = GetParam();
  cfg.storage_budget = 2.0;
  cfg.seed = 7;
  const ProbGraph pg(g, cfg);
  for (const auto m : {SimilarityMeasure::kJaccard, SimilarityMeasure::kOverlap,
                       SimilarityMeasure::kCommonNeighbors, SimilarityMeasure::kTotalNeighbors}) {
    const double exact = similarity_exact(g, 0, 1, m);
    const double est = similarity_probgraph(pg, 0, 1, m);
    EXPECT_NEAR(est, exact, std::max(0.15 * std::abs(exact), 0.15))
        << to_string(GetParam()) << "/" << to_string(m);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SimilarityPgSweep,
                         ::testing::Values(SketchKind::kBloomFilter, SketchKind::kKHash,
                                           SketchKind::kOneHash, SketchKind::kKmv),
                         [](const auto& info) { return to_string(info.param); });

TEST(SimilarityPg, WeightedMeasuresBloom) {
  const CsrGraph g = gen::complete(48);
  ProbGraphConfig cfg;
  cfg.bf_bits = 1 << 12;
  cfg.seed = 13;
  const ProbGraph pg(g, cfg);
  const double exact = similarity_exact(g, 0, 1, SimilarityMeasure::kAdamicAdar);
  const double est = similarity_probgraph(pg, 0, 1, SimilarityMeasure::kAdamicAdar);
  // BF membership filtering only adds false positives: est >= exact-ish.
  EXPECT_NEAR(est, exact, exact * 0.3);
}

TEST(SimilarityPg, WeightedMeasuresOneHashScale) {
  const CsrGraph g = gen::complete(48);
  ProbGraphConfig cfg;
  cfg.kind = SketchKind::kOneHash;
  cfg.minhash_k = 24;
  cfg.seed = 17;
  const ProbGraph pg(g, cfg);
  const double exact = similarity_exact(g, 0, 1, SimilarityMeasure::kResourceAllocation);
  const double est = similarity_probgraph(pg, 0, 1, SimilarityMeasure::kResourceAllocation);
  EXPECT_NEAR(est, exact, exact * 0.4);
}

}  // namespace
}  // namespace probgraph::algo
