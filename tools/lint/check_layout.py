#!/usr/bin/env python3
"""Frozen-POD layout lint + hot-path hygiene checks.

Three rules, all cheap enough to run in every CI job:

1. Layout manifest: every struct in tools/lint/layout_manifest.json must
   (a) declare exactly the manifest's fields, in order, in its header;
   (b) carry a `static_assert(sizeof(S) == N)` pin matching the manifest;
   (c) carry a `static_assert(offsetof(S, field) == N)` pin for every
       field, matching the manifest.
   The compiler proves the asserts are TRUE; this lint proves the asserts
   EXIST and agree with the checked-in manifest, so layout drift cannot be
   "fixed" by quietly editing an assert -- the manifest diff shows up in
   review as a format change.

2. Kernel purity: no mutex acquisition in files under src/core/kernels/.
   The kernel layer is the per-query inner loop; a lock there is always a
   bug (the serving stack provides all synchronization above it).

3. Hot-path regions: code between `// PROBGRAPH_HOT_PATH_BEGIN(name)` and
   `// PROBGRAPH_HOT_PATH_END(name)` markers must not allocate, lock, or
   grow containers (denylist below). The markers fence the LiveEngine pin
   path and the lock-free instrument record paths; the EXPECTED_REGIONS
   set pins the markers themselves so deleting one is also a lint failure.

Exit status 0 iff every rule passes. No dependencies beyond the stdlib.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys

MANIFEST = "tools/lint/layout_manifest.json"

MUTEX_FREE_DIRS = ["src/core/kernels"]
MUTEX_TOKENS = re.compile(
    r"std::mutex|util::Mutex\b|MutexLock|lock_guard|unique_lock|scoped_lock"
    r"|condition_variable|\.lock\s*\(|\.try_lock\s*\("
)

EXPECTED_REGIONS = {
    "src/engine/generation.hpp": ["live-pin"],
    "src/obs/instruments.hpp": ["counter-add", "gauge-set", "histogram-observe"],
}
HOT_PATH_DENYLIST = re.compile(
    r"\bnew\b|\bdelete\b|\bmalloc\b|\bcalloc\b|\brealloc\b|\bfree\s*\("
    r"|make_unique|make_shared|push_back|emplace_back|emplace\s*\("
    r"|\.resize\s*\(|\.reserve\s*\(|std::string\b|to_string"
    r"|std::mutex|util::Mutex\b|MutexLock|lock_guard|unique_lock|scoped_lock"
    r"|\.lock\s*\(|throw\b"
)
BEGIN_RE = re.compile(r"//\s*PROBGRAPH_HOT_PATH_BEGIN\(([\w-]+)\)")
END_RE = re.compile(r"//\s*PROBGRAPH_HOT_PATH_END\(([\w-]+)\)")


def strip_comments(text: str) -> str:
    """Blank out // and /* */ comments, preserving line structure."""
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == '"':  # skip string literals so "//" inside one survives
            out.append(ch)
            i += 1
            while i < n and text[i] != '"':
                if text[i] == "\\":
                    out.append(text[i])
                    i += 1
                    if i < n:
                        out.append(text[i])
                        i += 1
                    continue
                out.append(text[i])
                i += 1
            if i < n:
                out.append('"')
                i += 1
        elif text.startswith("//", i):
            while i < n and text[i] != "\n":
                i += 1
        elif text.startswith("/*", i):
            end = text.find("*/", i + 2)
            end = n if end < 0 else end + 2
            out.append("\n" * text.count("\n", i, end))
            i = end
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def drop_canary_blocks(text: str) -> str:
    """Remove the PROBGRAPH_LAYOUT_DRIFT_CANARY #if blocks (test-only)."""
    out_lines = []
    depth_in_canary = 0
    for line in text.splitlines():
        stripped = line.strip()
        if depth_in_canary:
            if stripped.startswith("#if"):
                depth_in_canary += 1
            elif stripped.startswith("#endif"):
                depth_in_canary -= 1
            continue
        if stripped.startswith("#if") and "PROBGRAPH_LAYOUT_DRIFT_CANARY" in stripped:
            depth_in_canary = 1
            continue
        out_lines.append(line)
    return "\n".join(out_lines)


MEMBER_RE = re.compile(
    r"^\s*(?!static\b|friend\b|using\b|enum\b|struct\b|class\b|public|private|protected)"
    r"[\w:<>,\s]+?[\s&*]"  # the type (possibly qualified/templated)
    r"(\w+)"  # the member name
    r"(?:\[\w+\])?"  # optional array extent
    r"\s*(?:=[^;]+)?;\s*$"  # optional default initializer
)


def parse_struct_fields(text: str, name: str, path: str, errors: list[str]):
    """Member names, in declaration order, of `struct name { ... };`."""
    m = re.search(r"struct\s+" + re.escape(name) + r"\s*\{", text)
    if not m:
        errors.append(f"{path}: struct {name} not found")
        return []
    depth, i = 1, m.end()
    while i < len(text) and depth:
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
        i += 1
    body = text[m.end() : i - 1]
    fields = []
    for line in body.splitlines():
        stripped = line.strip()
        if stripped.startswith(("friend ", "static ", "using ", "#")):
            continue
        if "(" in line:
            continue  # member function declaration/definition
        fm = MEMBER_RE.match(line)
        if fm:
            fields.append(fm.group(1))
    return fields


def check_layout(root: pathlib.Path, errors: list[str]) -> None:
    manifest = json.loads((root / MANIFEST).read_text())
    cache: dict[str, str] = {}

    def text_of(rel: str) -> str:
        if rel not in cache:
            raw = (root / rel).read_text()
            cache[rel] = drop_canary_blocks(strip_comments(raw))
        return cache[rel]

    for spec in manifest["structs"]:
        name = spec["name"]
        header = spec["header"]
        where = f"{header} (struct {name})"
        body_text = text_of(header)
        # The asserts may live in a different header than the struct
        # (BottomKEntry is declared in core/ but frozen by io/).
        assert_text = text_of(spec.get("assert_header", header))

        declared = parse_struct_fields(body_text, name, header, errors)
        expected = [f["name"] for f in spec["fields"]]
        if declared and declared != expected:
            errors.append(
                f"{where}: declared fields {declared} != manifest {expected} "
                "(frozen format: a new field needs a version bump, not an edit)"
            )

        size_re = re.compile(
            r"static_assert\s*\(\s*sizeof\s*\(\s*" + re.escape(name) + r"\s*\)\s*==\s*(\d+)"
        )
        sizes = [int(s) for s in size_re.findall(assert_text)]
        if not sizes:
            errors.append(f"{where}: missing static_assert(sizeof({name}) == {spec['size']})")
        elif any(s != spec["size"] for s in sizes):
            errors.append(f"{where}: sizeof pin {sizes} != manifest {spec['size']}")

        off_re = re.compile(
            r"static_assert\s*\(\s*offsetof\s*\(\s*" + re.escape(name)
            + r"\s*,\s*(\w+)\s*\)\s*==\s*(\d+)"
        )
        pinned = {f: int(off) for f, off in off_re.findall(assert_text)}
        for field in spec["fields"]:
            fname, foff = field["name"], field["offset"]
            if fname not in pinned:
                errors.append(
                    f"{where}: missing static_assert(offsetof({name}, {fname}) == {foff})"
                )
            elif pinned[fname] != foff:
                errors.append(
                    f"{where}: offsetof({name}, {fname}) pinned at {pinned[fname]}, "
                    f"manifest says {foff}"
                )
        for fname in sorted(set(pinned) - {f["name"] for f in spec["fields"]}):
            errors.append(f"{where}: offsetof pin for '{fname}' not in manifest")


def check_kernel_purity(root: pathlib.Path, errors: list[str]) -> None:
    for rel in MUTEX_FREE_DIRS:
        for path in sorted((root / rel).rglob("*")):
            if path.suffix not in {".hpp", ".cpp", ".h", ".cc"}:
                continue
            clean = strip_comments(path.read_text())
            for lineno, line in enumerate(clean.splitlines(), 1):
                if MUTEX_TOKENS.search(line):
                    errors.append(
                        f"{path.relative_to(root)}:{lineno}: mutex use in the kernel "
                        f"layer (locks live above core/kernels/): {line.strip()}"
                    )


def check_hot_paths(root: pathlib.Path, errors: list[str]) -> None:
    seen: dict[str, list[str]] = {}
    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in {".hpp", ".cpp", ".h", ".cc"}:
            continue
        rel = str(path.relative_to(root))
        raw_lines = path.read_text().splitlines()
        open_region: str | None = None
        open_line = 0
        for lineno, raw in enumerate(raw_lines, 1):
            b, e = BEGIN_RE.search(raw), END_RE.search(raw)
            if b:
                if open_region is not None:
                    errors.append(f"{rel}:{lineno}: nested hot-path region")
                open_region, open_line = b.group(1), lineno
                seen.setdefault(rel, []).append(open_region)
                continue
            if e:
                if open_region != e.group(1):
                    errors.append(
                        f"{rel}:{lineno}: END({e.group(1)}) does not match "
                        f"BEGIN({open_region})"
                    )
                open_region = None
                continue
            if open_region is None:
                continue
            code = re.sub(r"//.*$", "", raw)
            code = re.sub(r"=\s*(delete|default)", "", code)  # deleted members, not delete-expr
            m = HOT_PATH_DENYLIST.search(code)
            if m:
                errors.append(
                    f"{rel}:{lineno}: '{m.group(0).strip()}' inside hot-path "
                    f"region '{open_region}' (atomics only -- no allocation, "
                    "locking, or container growth)"
                )
        if open_region is not None:
            errors.append(f"{rel}:{open_line}: unterminated hot-path region '{open_region}'")

    for rel, regions in EXPECTED_REGIONS.items():
        for region in regions:
            if region not in seen.get(rel, []):
                errors.append(
                    f"{rel}: expected hot-path region '{region}' is missing "
                    "(markers are part of the contract; do not delete them)"
                )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repo", default=str(pathlib.Path(__file__).resolve().parents[2]),
        help="repository root (default: inferred from this script's location)",
    )
    args = parser.parse_args()
    root = pathlib.Path(args.repo)

    errors: list[str] = []
    check_layout(root, errors)
    check_kernel_purity(root, errors)
    check_hot_paths(root, errors)

    if errors:
        print(f"check_layout: {len(errors)} finding(s):", file=sys.stderr)
        for err in errors:
            print(f"  {err}", file=sys.stderr)
        return 1
    print("check_layout: layout manifest, kernel purity, and hot-path regions OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
