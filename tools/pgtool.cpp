// pgtool — command-line front end for the ProbGraph library.
//
// Runs the paper's mining algorithms on an edge-list/MatrixMarket file (or
// a generated Kronecker graph) with a chosen set representation:
//
//   pgtool tc        <graph> [options]    triangle counting
//   pgtool 4cc       <graph> [options]    4-clique counting
//   pgtool kclique   <graph> --k-clique K [options]
//   pgtool cluster   <graph> [options]    Jarvis-Patrick clustering
//   pgtool stats     <graph>              basic graph statistics
//
// <graph> is a path, or "kron:SCALE:EDGEFACTOR" for a generated graph.
// Options:
//   --sketch bf|1h|kh|kmv   representation (default bf; "exact" disables PG)
//   --estimator and|limit|or  BF intersection estimator (default and)
//   --budget S              storage budget in [0,1] (default 0.25)
//   --bf-hashes B           BF hash functions (default 2)
//   --k K                   explicit MinHash/KMV k (overrides budget)
//   --tau T                 clustering threshold (default 0.1)
//   --measure M             jaccard|overlap|common|total (default jaccard)
//   --threads N             OpenMP thread count
//   --seed S                sketch seed (default 42)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "algorithms/clustering.hpp"
#include "algorithms/clique_count.hpp"
#include "algorithms/kclique.hpp"
#include "algorithms/triangle_count.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/orientation.hpp"
#include "util/threading.hpp"
#include "util/timer.hpp"

using namespace probgraph;

namespace {

struct Options {
  std::string command;
  std::string graph;
  bool exact = false;
  bool estimator_set = false;
  ProbGraphConfig pg;
  double tau = 0.1;
  unsigned kclique = 5;
  algo::SimilarityMeasure measure = algo::SimilarityMeasure::kJaccard;
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: pgtool tc|4cc|kclique|cluster|stats <graph.el|graph.mtx|kron:S:E>\n"
               "       [--sketch bf|1h|kh|kmv|exact] [--estimator and|limit|or]\n"
               "       [--budget S] [--bf-hashes B]\n"
               "       [--k K] [--k-clique K] [--tau T] [--measure jaccard|overlap|common|total]\n"
               "       [--threads N] [--seed S]\n");
  std::exit(2);
}

CsrGraph load_graph(const std::string& spec) {
  if (spec.rfind("kron:", 0) == 0) {
    unsigned scale = 0;
    double ef = 0;
    if (std::sscanf(spec.c_str(), "kron:%u:%lf", &scale, &ef) != 2) usage();
    return gen::kronecker(scale, ef, 42);
  }
  if (spec.size() > 4 && spec.substr(spec.size() - 4) == ".mtx") {
    return io::read_matrix_market(spec);
  }
  return io::read_edge_list(spec);
}

Options parse(int argc, char** argv) {
  if (argc < 3) usage();
  Options opt;
  opt.command = argv[1];
  opt.graph = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (flag == "--sketch") {
      const std::string v = value();
      if (v == "exact") {
        opt.exact = true;
      } else if (const auto kind = parse_sketch_kind(v)) {
        opt.pg.kind = *kind;
      } else {
        usage();
      }
    } else if (flag == "--estimator") {
      const auto e = parse_bf_estimator(value());
      if (!e) usage();
      opt.pg.bf_estimator = *e;
      opt.estimator_set = true;
    } else if (flag == "--budget") {
      opt.pg.storage_budget = std::atof(value());
    } else if (flag == "--bf-hashes") {
      opt.pg.bf_hashes = static_cast<std::uint32_t>(std::atoi(value()));
    } else if (flag == "--k") {
      opt.pg.minhash_k = static_cast<std::uint32_t>(std::atoi(value()));
    } else if (flag == "--k-clique") {
      opt.kclique = static_cast<unsigned>(std::atoi(value()));
    } else if (flag == "--tau") {
      opt.tau = std::atof(value());
    } else if (flag == "--measure") {
      const std::string v = value();
      if (v == "jaccard") opt.measure = algo::SimilarityMeasure::kJaccard;
      else if (v == "overlap") opt.measure = algo::SimilarityMeasure::kOverlap;
      else if (v == "common") opt.measure = algo::SimilarityMeasure::kCommonNeighbors;
      else if (v == "total") opt.measure = algo::SimilarityMeasure::kTotalNeighbors;
      else usage();
    } else if (flag == "--threads") {
      util::set_threads(std::atoi(value()));
    } else if (flag == "--seed") {
      opt.pg.seed = static_cast<std::uint64_t>(std::atoll(value()));
    } else {
      usage();
    }
  }
  if (opt.estimator_set && (opt.exact || opt.pg.kind != SketchKind::kBloomFilter)) {
    std::fprintf(stderr,
                 "pgtool: warning: --estimator only applies to --sketch bf; ignored\n");
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  const CsrGraph g = load_graph(opt.graph);
  std::printf("graph: n=%u, m=%llu, d_max=%llu, d_avg=%.1f\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()),
              static_cast<unsigned long long>(g.max_degree()), g.avg_degree());

  if (opt.command == "stats") {
    std::printf("degree moments: sum d^2 = %.3e, sum d^3 = %.3e\n", g.degree_moment(2),
                g.degree_moment(3));
    std::printf("CSR memory: %.2f MB\n", static_cast<double>(g.memory_bytes()) / 1e6);
    return 0;
  }

  util::Timer timer;
  if (opt.command == "cluster") {
    if (opt.exact) {
      const auto r = algo::jarvis_patrick_exact(g, opt.measure, opt.tau);
      std::printf("exact clustering: %zu clusters, %llu kept edges, %.4fs\n",
                  r.num_clusters, static_cast<unsigned long long>(r.kept_edges),
                  timer.seconds());
    } else {
      const ProbGraph pg(g, opt.pg);
      timer.reset();
      const auto r = algo::jarvis_patrick_probgraph(pg, opt.measure, opt.tau);
      std::printf("%s clustering: %zu clusters, %llu kept edges, %.4fs "
                  "(+%.4fs sketch construction, relmem %.2f)\n",
                  to_string(pg.kind()), r.num_clusters,
                  static_cast<unsigned long long>(r.kept_edges), timer.seconds(),
                  pg.construction_seconds(), pg.relative_memory());
    }
    return 0;
  }

  // The counting commands run on the degree-oriented DAG.
  const CsrGraph dag = degree_orient(g);
  ProbGraphConfig dag_cfg = opt.pg;
  dag_cfg.budget_reference_bytes = g.memory_bytes();

  if (opt.command == "tc") {
    if (opt.exact) {
      timer.reset();
      const auto tc = algo::triangle_count_exact_oriented(dag);
      std::printf("exact TC = %llu (%.4fs)\n", static_cast<unsigned long long>(tc),
                  timer.seconds());
    } else {
      const ProbGraph pg(dag, dag_cfg);
      timer.reset();
      const double tc = algo::triangle_count_probgraph(pg);
      std::printf("%s TC ≈ %.0f (%.4fs, +%.4fs construction, relmem %.2f)\n",
                  to_string(pg.kind()), tc, timer.seconds(), pg.construction_seconds(),
                  pg.relative_memory());
    }
  } else if (opt.command == "4cc") {
    if (opt.exact) {
      timer.reset();
      const auto ck = algo::four_clique_count_exact_oriented(dag);
      std::printf("exact 4CC = %llu (%.4fs)\n", static_cast<unsigned long long>(ck),
                  timer.seconds());
    } else {
      const ProbGraph pg(dag, dag_cfg);
      timer.reset();
      const double ck = algo::four_clique_count_probgraph(pg);
      std::printf("%s 4CC ≈ %.0f (%.4fs, relmem %.2f)\n", to_string(pg.kind()), ck,
                  timer.seconds(), pg.relative_memory());
    }
  } else if (opt.command == "kclique") {
    if (opt.exact) {
      timer.reset();
      const auto ck = algo::kclique_count_exact_oriented(dag, opt.kclique);
      std::printf("exact %u-clique count = %llu (%.4fs)\n", opt.kclique,
                  static_cast<unsigned long long>(ck), timer.seconds());
    } else {
      const ProbGraph pg(dag, dag_cfg);
      timer.reset();
      const double ck = algo::kclique_count_probgraph(pg, opt.kclique);
      std::printf("%s %u-clique count ≈ %.0f (%.4fs, relmem %.2f)\n", to_string(pg.kind()),
                  opt.kclique, ck, timer.seconds(), pg.relative_memory());
    }
  } else {
    usage();
  }
  return 0;
}
