// pgtool — command-line front end for the ProbGraph library.
//
// Runs the paper's mining algorithms on an edge-list/MatrixMarket file (or
// a generated Kronecker graph) with a chosen set representation:
//
//   pgtool tc        <graph> [options]    triangle counting
//   pgtool 4cc       <graph> [options]    4-clique counting
//   pgtool kclique   <graph> --k-clique K [options]
//   pgtool cluster   <graph> [options]    Jarvis-Patrick clustering
//   pgtool stats     <graph>              basic graph statistics
//   pgtool build     <graph> -o <file.pgs> [--orient] [options]
//                                         persist CSR + sketches to a
//                                         snapshot (build once, map many)
//
// <graph> is a path, or "kron:SCALE:EDGEFACTOR" for a generated graph.
// Every command except build also accepts `--snapshot <file.pgs>` in place
// of <graph>: the snapshot is mmap'ed and estimates are served zero-copy
// out of the mapping (sketch options then come from the file, not flags).
// Counting commands need a snapshot built with --orient (they run on the
// degree-oriented DAG); clustering needs one built without it.
//
// Options:
//   --sketch bf|1h|kh|kmv   representation (default bf; "exact" disables PG)
//   --estimator and|limit|or  BF intersection estimator (default and)
//   --budget S              storage budget in [0,1] (default 0.25)
//   --bf-hashes B           BF hash functions (default 2)
//   --k K                   explicit MinHash/KMV k (overrides budget)
//   --tau T                 clustering threshold (default 0.1)
//   --measure M             jaccard|overlap|common|total (default jaccard)
//   --threads N             OpenMP thread count
//   --seed S                sketch seed (default 42)
//   --snapshot FILE         serve from a .pgs snapshot instead of <graph>
//   -o, --output FILE       (build) snapshot output path
//   --orient                (build) sketch the degree-oriented DAG
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>

#include "algorithms/clustering.hpp"
#include "algorithms/clique_count.hpp"
#include "algorithms/kclique.hpp"
#include "algorithms/triangle_count.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/orientation.hpp"
#include "io/snapshot.hpp"
#include "util/threading.hpp"
#include "util/timer.hpp"

using namespace probgraph;

namespace {

struct Options {
  std::string command;
  std::string graph;     // edge-list/mtx path or kron:S:E spec
  std::string snapshot;  // .pgs input (serving commands)
  std::string output;    // .pgs output (build)
  bool orient = false;
  bool exact = false;
  bool estimator_set = false;
  bool sketch_flags_set = false;
  ProbGraphConfig pg;
  double tau = 0.1;
  unsigned kclique = 5;
  algo::SimilarityMeasure measure = algo::SimilarityMeasure::kJaccard;
};

void print_usage(std::FILE* to) {
  std::fprintf(to,
               "usage: pgtool tc|4cc|kclique|cluster|stats <graph.el|graph.mtx|kron:S:E>\n"
               "       pgtool tc|4cc|kclique|cluster|stats --snapshot <file.pgs>\n"
               "       pgtool build <graph> -o <file.pgs> [--orient]\n"
               "       [--sketch bf|1h|kh|kmv|exact] [--estimator and|limit|or]\n"
               "       [--budget S] [--bf-hashes B]\n"
               "       [--k K] [--k-clique K] [--tau T] [--measure jaccard|overlap|common|total]\n"
               "       [--threads N] [--seed S]\n"
               "build persists the CSR graph plus fully-built sketches; --snapshot mmaps\n"
               "such a file and serves estimates zero-copy. Counting commands (tc, 4cc,\n"
               "kclique) need a snapshot built with --orient; cluster needs one without.\n");
}

[[noreturn]] void fail(const std::string& msg) {
  std::fprintf(stderr, "pgtool: error: %s\n\n", msg.c_str());
  print_usage(stderr);
  std::exit(2);
}

CsrGraph load_graph(const std::string& spec) {
  if (spec.rfind("kron:", 0) == 0) {
    unsigned scale = 0;
    double ef = 0;
    if (std::sscanf(spec.c_str(), "kron:%u:%lf", &scale, &ef) != 2) {
      fail("malformed Kronecker spec '" + spec + "' (expected kron:SCALE:EDGEFACTOR)");
    }
    return gen::kronecker(scale, ef, 42);
  }
  if (spec.size() > 4 && spec.substr(spec.size() - 4) == ".mtx") {
    return io::read_matrix_market(spec);
  }
  return io::read_edge_list(spec);
}

Options parse(int argc, char** argv) {
  if (argc < 2) fail("missing command");
  Options opt;
  opt.command = argv[1];
  const bool known_command = opt.command == "tc" || opt.command == "4cc" ||
                             opt.command == "kclique" || opt.command == "cluster" ||
                             opt.command == "stats" || opt.command == "build";
  if (!known_command) fail("unknown command '" + opt.command + "'");

  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) fail("flag " + flag + " requires a value");
      return argv[++i];
    };
    if (flag == "--sketch") {
      opt.sketch_flags_set = true;
      const std::string v = value();
      if (v == "exact") {
        opt.exact = true;
      } else if (const auto kind = parse_sketch_kind(v)) {
        opt.pg.kind = *kind;
      } else {
        fail("unknown sketch kind '" + v + "' (expected bf, 1h, kh, kmv, or exact)");
      }
    } else if (flag == "--estimator") {
      const std::string v = value();
      const auto e = parse_bf_estimator(v);
      if (!e) fail("unknown BF estimator '" + v + "' (expected and, limit, or or)");
      opt.pg.bf_estimator = *e;
      opt.estimator_set = true;
      opt.sketch_flags_set = true;
    } else if (flag == "--budget") {
      opt.pg.storage_budget = std::atof(value());
      opt.sketch_flags_set = true;
    } else if (flag == "--bf-hashes") {
      opt.pg.bf_hashes = static_cast<std::uint32_t>(std::atoi(value()));
      opt.sketch_flags_set = true;
    } else if (flag == "--k") {
      opt.pg.minhash_k = static_cast<std::uint32_t>(std::atoi(value()));
      opt.sketch_flags_set = true;
    } else if (flag == "--k-clique") {
      opt.kclique = static_cast<unsigned>(std::atoi(value()));
    } else if (flag == "--tau") {
      opt.tau = std::atof(value());
    } else if (flag == "--measure") {
      const std::string v = value();
      if (v == "jaccard") opt.measure = algo::SimilarityMeasure::kJaccard;
      else if (v == "overlap") opt.measure = algo::SimilarityMeasure::kOverlap;
      else if (v == "common") opt.measure = algo::SimilarityMeasure::kCommonNeighbors;
      else if (v == "total") opt.measure = algo::SimilarityMeasure::kTotalNeighbors;
      else fail("unknown measure '" + v + "' (expected jaccard, overlap, common, or total)");
    } else if (flag == "--threads") {
      util::set_threads(std::atoi(value()));
    } else if (flag == "--seed") {
      opt.pg.seed = static_cast<std::uint64_t>(std::atoll(value()));
      opt.sketch_flags_set = true;
    } else if (flag == "--snapshot") {
      opt.snapshot = value();
    } else if (flag == "-o" || flag == "--output") {
      opt.output = value();
    } else if (flag == "--orient") {
      opt.orient = true;
    } else if (flag.rfind("-", 0) == 0) {
      fail("unknown flag '" + flag + "'");
    } else if (opt.graph.empty()) {
      opt.graph = flag;
    } else {
      fail("unexpected positional argument '" + flag + "' (graph already given: '" +
           opt.graph + "')");
    }
  }

  if (opt.command == "build") {
    if (!opt.snapshot.empty()) fail("build reads a graph, not a snapshot (--snapshot)");
    if (opt.graph.empty()) fail("build requires an input <graph>");
    if (opt.output.empty()) fail("build requires an output path (-o <file.pgs>)");
    if (opt.exact) fail("--sketch exact has no sketches to persist");
  } else {
    if (!opt.output.empty()) fail("-o/--output only applies to the build command");
    if (opt.orient) fail("--orient only applies to the build command");
    if (!opt.graph.empty() && !opt.snapshot.empty()) {
      fail("give either <graph> or --snapshot, not both ('" + opt.graph + "' and '" +
           opt.snapshot + "')");
    }
    if (opt.graph.empty() && opt.snapshot.empty()) {
      fail("missing input: give <graph> or --snapshot <file.pgs>");
    }
    if (!opt.snapshot.empty() && opt.sketch_flags_set && !opt.exact) {
      std::fprintf(stderr,
                   "pgtool: warning: sketch flags are ignored with --snapshot; the "
                   "representation comes from the file\n");
    }
  }
  if (opt.estimator_set && (opt.exact || opt.pg.kind != SketchKind::kBloomFilter)) {
    std::fprintf(stderr,
                 "pgtool: warning: --estimator only applies to --sketch bf; ignored\n");
  }
  return opt;
}

void print_graph_line(const CsrGraph& g) {
  std::printf("graph: n=%u, m=%llu, d_max=%llu, d_avg=%.1f\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()),
              static_cast<unsigned long long>(g.max_degree()), g.avg_degree());
}

int run_build(const Options& opt) {
  const CsrGraph g = load_graph(opt.graph);
  print_graph_line(g);

  ProbGraphConfig cfg = opt.pg;
  io::SnapshotMeta meta;
  std::optional<CsrGraph> oriented;
  const CsrGraph* sketch_graph = &g;
  if (opt.orient) {
    meta.degree_oriented = true;
    // Keep the §V-A budget meaning of "additional memory on top of the
    // CSR of G" — exactly what the serving commands do locally.
    cfg.budget_reference_bytes = g.memory_bytes();
    oriented.emplace(degree_orient(g));
    sketch_graph = &*oriented;
  }
  const ProbGraph pg(*sketch_graph, cfg);
  util::Timer timer;
  io::save_snapshot(opt.output, pg, meta);
  std::printf("wrote %s: %s sketches%s, %.2f MB sketch arena (relmem %.2f), "
              "construction %.4fs, save %.4fs\n",
              opt.output.c_str(), to_string(pg.kind()),
              meta.degree_oriented ? " over the degree-oriented DAG" : "",
              static_cast<double>(pg.memory_bytes()) / 1e6, pg.relative_memory(),
              pg.construction_seconds(), timer.seconds());
  return 0;
}

int run_command(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  if (opt.command == "build") return run_build(opt);

  // Serving path: the graph (and, with --snapshot, the prebuilt sketches)
  // come either from a file/generator or zero-copy out of a .pgs mapping.
  std::optional<io::Snapshot> snap;
  std::optional<CsrGraph> owned_graph;
  const CsrGraph* g = nullptr;
  if (!opt.snapshot.empty()) {
    util::Timer load_timer;
    snap.emplace(io::load_snapshot(opt.snapshot));
    const io::SnapshotInfo& info = snap->info();
    std::printf("snapshot: %s, %s sketches%s, %.2f MB file, loaded in %.4fs "
                "(original construction %.4fs)\n",
                opt.snapshot.c_str(), to_string(info.kind),
                info.degree_oriented ? " (degree-oriented)" : "",
                static_cast<double>(info.file_bytes) / 1e6, load_timer.seconds(),
                info.construction_seconds);
    g = &snap->graph();
  } else {
    owned_graph.emplace(load_graph(opt.graph));
    g = &*owned_graph;
  }
  print_graph_line(*g);

  if (opt.command == "stats") {
    std::printf("degree moments: sum d^2 = %.3e, sum d^3 = %.3e\n", g->degree_moment(2),
                g->degree_moment(3));
    std::printf("CSR memory: %.2f MB%s\n", static_cast<double>(g->memory_bytes()) / 1e6,
                g->is_mapped() ? " (mmap-served)" : "");
    return 0;
  }

  util::Timer timer;
  if (opt.command == "cluster") {
    // A content (not CLI-syntax) problem: throw so the top-level handler
    // prints a clean error and exits 1 without the usage dump.
    if (snap && snap->info().degree_oriented) {
      throw std::runtime_error(
          "snapshot '" + opt.snapshot +
          "' sketches the degree-oriented DAG; cluster needs one built without --orient");
    }
    if (opt.exact) {
      const auto r = algo::jarvis_patrick_exact(*g, opt.measure, opt.tau);
      std::printf("exact clustering: %zu clusters, %llu kept edges, %.4fs\n",
                  r.num_clusters, static_cast<unsigned long long>(r.kept_edges),
                  timer.seconds());
    } else {
      std::optional<ProbGraph> local_pg;
      if (!snap) local_pg.emplace(*g, opt.pg);
      const ProbGraph& pg = snap ? snap->prob_graph() : *local_pg;
      timer.reset();
      const auto r = algo::jarvis_patrick_probgraph(pg, opt.measure, opt.tau);
      std::printf("%s clustering: %zu clusters, %llu kept edges, %.4fs "
                  "(+%.4fs sketch construction, relmem %.2f)\n",
                  to_string(pg.kind()), r.num_clusters,
                  static_cast<unsigned long long>(r.kept_edges), timer.seconds(),
                  pg.construction_seconds(), pg.relative_memory());
    }
    return 0;
  }

  // The counting commands run on the degree-oriented DAG. A snapshot must
  // already contain it (pgtool build --orient); the edge-list path orients
  // here as before.
  std::optional<CsrGraph> owned_dag;
  const CsrGraph* dag = nullptr;
  if (snap) {
    if (!snap->info().degree_oriented) {
      throw std::runtime_error("snapshot '" + opt.snapshot +
                               "' sketches the symmetric graph; " + opt.command +
                               " needs one built with --orient");
    }
    dag = g;
  } else {
    owned_dag.emplace(degree_orient(*g));
    dag = &*owned_dag;
  }
  ProbGraphConfig dag_cfg = opt.pg;
  dag_cfg.budget_reference_bytes = g->memory_bytes();
  std::optional<ProbGraph> local_pg;
  const auto pg = [&]() -> const ProbGraph& {
    if (snap) return snap->prob_graph();
    if (!local_pg) local_pg.emplace(*dag, dag_cfg);
    return *local_pg;
  };

  if (opt.command == "tc") {
    if (opt.exact) {
      timer.reset();
      const auto tc = algo::triangle_count_exact_oriented(*dag);
      std::printf("exact TC = %llu (%.4fs)\n", static_cast<unsigned long long>(tc),
                  timer.seconds());
    } else {
      const ProbGraph& p = pg();
      timer.reset();
      const double tc = algo::triangle_count_probgraph(p);
      std::printf("%s TC ≈ %.0f (%.4fs, +%.4fs construction, relmem %.2f)\n",
                  to_string(p.kind()), tc, timer.seconds(), p.construction_seconds(),
                  p.relative_memory());
    }
  } else if (opt.command == "4cc") {
    if (opt.exact) {
      timer.reset();
      const auto ck = algo::four_clique_count_exact_oriented(*dag);
      std::printf("exact 4CC = %llu (%.4fs)\n", static_cast<unsigned long long>(ck),
                  timer.seconds());
    } else {
      const ProbGraph& p = pg();
      timer.reset();
      const double ck = algo::four_clique_count_probgraph(p);
      std::printf("%s 4CC ≈ %.0f (%.4fs, relmem %.2f)\n", to_string(p.kind()), ck,
                  timer.seconds(), p.relative_memory());
    }
  } else {  // kclique (the command set is validated in parse)
    if (opt.exact) {
      timer.reset();
      const auto ck = algo::kclique_count_exact_oriented(*dag, opt.kclique);
      std::printf("exact %u-clique count = %llu (%.4fs)\n", opt.kclique,
                  static_cast<unsigned long long>(ck), timer.seconds());
    } else {
      const ProbGraph& p = pg();
      timer.reset();
      const double ck = algo::kclique_count_probgraph(p, opt.kclique);
      std::printf("%s %u-clique count ≈ %.0f (%.4fs, relmem %.2f)\n", to_string(p.kind()),
                  opt.kclique, ck, timer.seconds(), p.relative_memory());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run_command(argc, argv);
  } catch (const std::exception& e) {
    // I/O and format errors (unreadable graphs, rejected snapshots, ...)
    // surface here as clean diagnostics rather than std::terminate.
    std::fprintf(stderr, "pgtool: error: %s\n", e.what());
    return 1;
  }
}
