// pgtool — command-line front end for the ProbGraph library.
//
// Every subcommand is a thin parser producing a typed engine::Query that a
// src/engine/ Engine executes (tools/pgtool.cpp owns no algorithm calls):
//
//   pgtool tc        <graph> [options]    triangle counting
//   pgtool 4cc       <graph> [options]    4-clique counting
//   pgtool kclique   <graph> --k-clique K [options]
//   pgtool cluster   <graph> [options]    Jarvis-Patrick clustering
//   pgtool cc        <graph> [options]    global clustering coefficient
//   pgtool pair      <graph> --pairs U:V[,U:V...] [--kind KIND] [options]
//   pgtool lp        <graph> [--topk K] [--measure M] [options]
//   pgtool stats     <graph>              basic graph statistics
//   pgtool build     <graph> -o <file.pgs> [--orient [both|dag|sym]]
//                    [--kinds bf,kmv,...] [options]
//                                         persist CSR + sketches to a
//                                         snapshot (build once, map many).
//                                         --kinds packs one substrate per
//                                         listed sketch kind and --orient
//                                         both packs every kind in both
//                                         orientations, so ONE file
//                                         answers counting queries from
//                                         the DAG sketches and
//                                         neighborhood queries from the
//                                         symmetric ones
//   pgtool update    <file.pgs> -o <out.pgs> [--inserts FILE]
//                    [--deletes FILE] [--apply-log FILE.pgd]
//                    [--delta-log FILE.pgd]
//                                         offline reseal: apply edge
//                                         inserts/deletes (and/or replay a
//                                         delta log) to a snapshot's
//                                         substrates incrementally
//                                         (src/live/apply.hpp — the result
//                                         is bit-identical to rebuilding
//                                         from the updated edge list) and
//                                         write the next generation;
//                                         --delta-log appends the applied
//                                         net batch to a delta log
//   pgtool serve     <file.pgs> [--listen PORT [--max-conns N]]
//                                         long-lived session: map the
//                                         snapshot once, answer one query
//                                         per line (src/engine/
//                                         protocol.hpp documents the
//                                         grammar), zero per-query setup.
//                                         Without --listen: a stdin REPL.
//                                         With --listen: a concurrent TCP
//                                         server on 127.0.0.1:PORT (PORT 0
//                                         picks an ephemeral port, named
//                                         on stderr) — every session
//                                         shares the one mapping;
//                                         SIGINT/SIGTERM stop gracefully.
//                                         --live serves through an
//                                         engine::LiveEngine: sessions may
//                                         stage edge changes and seal them
//                                         as a new generation (`update` /
//                                         `epoch` protocol verbs) while
//                                         queries keep running lock-free;
//                                         --delta-log FILE.pgd appends
//                                         every sealed batch to a durable
//                                         delta log
//   pgtool client    <host> <port>        connect to a serving pgtool:
//                                         pump stdin lines to the server
//                                         and replies to stdout, so
//                                         scripted sessions work over the
//                                         wire exactly like piped stdin
//
// <graph> is a path, or "kron:SCALE:EDGEFACTOR" for a generated graph.
// Every command except build/serve also accepts `--snapshot <file.pgs>` in
// place of <graph>: the snapshot is mmap'ed and estimates are served
// zero-copy out of the mapping (sketch parameters then come from the file;
// `--sketch KIND` routes to that sketch substrate of a multi-substrate
// snapshot). Counting estimates need a DAG substrate (--orient or --orient
// both); neighborhood queries (cluster, cc, pair, lp) need a symmetric
// one. Flags are validated against the command: unknown, duplicate, or
// inapplicable flags are rejected, not silently accepted.
//
// Options:
//   --sketch bf|1h|kh|kmv   representation (default bf; "exact" disables PG)
//   --estimator and|limit|or  BF intersection estimator (default and)
//   --budget S              storage budget in [0,1] (default 0.25)
//   --bf-hashes B           BF hash functions (default 2)
//   --k K                   explicit MinHash/KMV k (overrides budget)
//   --tau T                 clustering threshold (default 0.1)
//   --measure M             jaccard|overlap|common|total|adamic|resource
//   --kind K                pair estimate: intersection|jaccard|overlap|
//                           common|total (default intersection)
//   --pairs U:V[,U:V...]    pair: the batch of vertex pairs to score
//   --topk K                lp: number of predicted links (default 10)
//   --threads N             OpenMP thread count
//   --seed S                sketch seed (default 42)
//   --snapshot FILE         serve from a .pgs snapshot instead of <graph>
//   -o, --output FILE       (build) snapshot output path
//   --orient [both|dag|sym] (build) sketch the degree-oriented DAG; "both"
//                           packs the symmetric AND the DAG substrates
//   --kinds K1,K2,...       (build) pack one substrate per sketch kind
//   --metrics-port P        (serve) Prometheus text /metrics endpoint on
//                           127.0.0.1:P (0 = ephemeral, named on stderr);
//                           works in both REPL and --listen modes
//   --slow-ms N             (serve) log a structured slow-query line to
//                           stderr for any query at or above N ms
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <charconv>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <type_traits>
#include <vector>

#include "engine/engine.hpp"
#include "engine/generation.hpp"
#include "engine/protocol.hpp"
#include "engine/query.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/orientation.hpp"
#include "io/snapshot.hpp"
#include "live/apply.hpp"
#include "live/delta.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_http.hpp"
#include "util/threading.hpp"
#include "util/timer.hpp"

using namespace probgraph;

namespace {

// --- Flag registry: one bit per flag, masked per command. ---

enum : unsigned {
  kFSketch = 1u << 0,
  kFEstimator = 1u << 1,
  kFBudget = 1u << 2,
  kFBfHashes = 1u << 3,
  kFK = 1u << 4,
  kFSeed = 1u << 5,
  kFKClique = 1u << 6,
  kFTau = 1u << 7,
  kFMeasure = 1u << 8,
  kFThreads = 1u << 9,
  kFSnapshot = 1u << 10,
  kFOutput = 1u << 11,
  kFOrient = 1u << 12,
  kFPairs = 1u << 13,
  kFKind = 1u << 14,
  kFTopK = 1u << 15,
  kFListen = 1u << 16,
  kFMaxConns = 1u << 17,
  kFKinds = 1u << 18,
  kFMetricsPort = 1u << 19,
  kFSlowMs = 1u << 20,
  kFLive = 1u << 21,
  kFDeltaLog = 1u << 22,
  kFInserts = 1u << 23,
  kFDeletes = 1u << 24,
  kFApplyLog = 1u << 25,
  kFTransport = 1u << 26,
};

/// The sketch-construction flags shared by every command that may build or
/// describe a ProbGraph.
constexpr unsigned kSketchFlags =
    kFSketch | kFEstimator | kFBudget | kFBfHashes | kFK | kFSeed;

struct FlagSpec {
  const char* name;
  const char* alias;  // e.g. "-o" for --output
  unsigned bit;
  bool takes_value;
};

constexpr FlagSpec kFlagSpecs[] = {
    {"--sketch", nullptr, kFSketch, true},
    {"--estimator", nullptr, kFEstimator, true},
    {"--budget", nullptr, kFBudget, true},
    {"--bf-hashes", nullptr, kFBfHashes, true},
    {"--k", nullptr, kFK, true},
    {"--seed", nullptr, kFSeed, true},
    {"--k-clique", nullptr, kFKClique, true},
    {"--tau", nullptr, kFTau, true},
    {"--measure", nullptr, kFMeasure, true},
    {"--threads", nullptr, kFThreads, true},
    {"--snapshot", nullptr, kFSnapshot, true},
    {"--output", "-o", kFOutput, true},
    {"--orient", nullptr, kFOrient, false},
    {"--pairs", nullptr, kFPairs, true},
    {"--kind", nullptr, kFKind, true},
    {"--topk", nullptr, kFTopK, true},
    {"--listen", nullptr, kFListen, true},
    {"--max-conns", nullptr, kFMaxConns, true},
    {"--kinds", nullptr, kFKinds, true},
    {"--metrics-port", nullptr, kFMetricsPort, true},
    {"--slow-ms", nullptr, kFSlowMs, true},
    {"--live", nullptr, kFLive, false},
    {"--delta-log", nullptr, kFDeltaLog, true},
    {"--inserts", nullptr, kFInserts, true},
    {"--deletes", nullptr, kFDeletes, true},
    {"--apply-log", nullptr, kFApplyLog, true},
    {"--transport", nullptr, kFTransport, true},
};

/// Which orientations `build` sketches (and packs into the snapshot).
enum class OrientMode { kSym, kDag, kBoth };

struct Args {
  std::string command;
  std::string input;     // edge-list/mtx path, kron:S:E spec, serve's .pgs,
                         // or client's <host>
  std::string input2;    // second positional (client's <port>)
  std::string snapshot;  // .pgs input (--snapshot on serving commands)
  std::string output;    // .pgs output (build)
  std::optional<std::uint16_t> listen;  // serve: TCP port (0 = ephemeral)
  int max_conns = 16;                   // serve --listen: live-session cap
  net::TransportKind transport = net::TransportKind::kThreads;  // serve --listen
  std::optional<std::uint16_t> metrics_port;  // serve: /metrics HTTP port
  double slow_ms = 0;                   // serve: slow-query log threshold
  bool live = false;                    // serve: accept update/epoch verbs
  std::string delta_log;                // serve/update: .pgd log to append
  std::string inserts_path;             // update: edge file to insert
  std::string deletes_path;             // update: edge file to delete
  std::string apply_log;                // update: .pgd log to replay
  OrientMode orient = OrientMode::kSym;
  std::vector<SketchKind> kinds;        // build --kinds (empty: just pg.kind)
  std::optional<SketchKind> route_kind; // --sketch over --snapshot: substrate routing
  bool exact = false;
  bool estimator_set = false;
  bool sketch_kind_set = false;        // --sketch KIND given
  bool sketch_flags_set = false;       // any sketch-construction flag given
  bool sketch_param_set = false;       // a non---sketch construction flag given
  ProbGraphConfig pg;
  double tau = 0.1;
  unsigned kclique = 5;
  algo::SimilarityMeasure measure_cluster = algo::SimilarityMeasure::kJaccard;
  algo::SimilarityMeasure measure_lp = algo::SimilarityMeasure::kCommonNeighbors;
  engine::EstimateKind kind = engine::EstimateKind::kIntersection;
  std::vector<engine::VertexPair> pairs;
  std::uint32_t topk = 10;
};

using Runner = int (*)(const Args&);

struct CommandSpec {
  const char* name;
  unsigned allowed;           // OR of the flag bits this command accepts
  bool positional_is_pgs;     // serve: the positional input is a .pgs path
  const char* synopsis;
  Runner run;
  bool two_positionals = false;  // client: <host> <port>
};

int run_counting(const Args& a);   // tc, 4cc, kclique
int run_cluster(const Args& a);
int run_cc(const Args& a);
int run_pair(const Args& a);
int run_lp(const Args& a);
int run_stats(const Args& a);
int run_build(const Args& a);
int run_update(const Args& a);
int run_serve(const Args& a);
int run_client(const Args& a);

constexpr unsigned kServingCommon = kSketchFlags | kFSnapshot | kFThreads;

constexpr CommandSpec kCommands[] = {
    {"tc", kServingCommon, false, "tc <graph>|--snapshot <file.pgs>", run_counting},
    {"4cc", kServingCommon, false, "4cc <graph>|--snapshot <file.pgs>", run_counting},
    {"kclique", kServingCommon | kFKClique, false,
     "kclique <graph>|--snapshot <file.pgs> --k-clique K", run_counting},
    {"cluster", kServingCommon | kFTau | kFMeasure, false,
     "cluster <graph>|--snapshot <file.pgs> [--measure M] [--tau T]", run_cluster},
    {"cc", kServingCommon, false, "cc <graph>|--snapshot <file.pgs>", run_cc},
    {"pair", kServingCommon | kFPairs | kFKind, false,
     "pair <graph>|--snapshot <file.pgs> --pairs U:V[,U:V...] [--kind KIND]", run_pair},
    {"lp", kServingCommon | kFTopK | kFMeasure, false,
     "lp <graph>|--snapshot <file.pgs> [--topk K] [--measure M]", run_lp},
    {"stats", kFSnapshot | kFThreads, false, "stats <graph>|--snapshot <file.pgs>",
     run_stats},
    {"build", kSketchFlags | kFOutput | kFOrient | kFThreads | kFKinds, false,
     "build <graph> -o <file.pgs> [--orient [both|dag|sym]] [--kinds bf,kmv,...]",
     run_build},
    {"update", kFOutput | kFInserts | kFDeletes | kFApplyLog | kFDeltaLog | kFThreads,
     true,
     "update <file.pgs> -o <out.pgs> [--inserts FILE] [--deletes FILE] "
     "[--apply-log FILE.pgd] [--delta-log FILE.pgd]", run_update},
    {"serve",
     kFThreads | kFListen | kFMaxConns | kFMetricsPort | kFSlowMs | kFLive |
         kFDeltaLog | kFTransport,
     true,
     "serve <file.pgs> [--listen PORT [--max-conns N] [--transport threads|epoll]] "
     "[--metrics-port P] [--slow-ms N] [--live [--delta-log FILE.pgd]]", run_serve},
    {"client", 0, false, "client <host> <port>", run_client, true},
};

void print_usage(std::FILE* to) {
  std::fprintf(to,
               "usage: pgtool <command> ...\n"
               "commands:\n");
  for (const CommandSpec& c : kCommands) std::fprintf(to, "  pgtool %s\n", c.synopsis);
  std::fprintf(to,
               "options (validated per command):\n"
               "  [--sketch bf|1h|kh|kmv|exact] [--estimator and|limit|or]\n"
               "  [--budget S] [--bf-hashes B] [--k K] [--seed S] [--threads N]\n"
               "  [--k-clique K] [--tau T]\n"
               "  [--measure jaccard|overlap|common|total|adamic|resource]\n"
               "  [--kind intersection|jaccard|overlap|common|total]\n"
               "  [--pairs U:V[,U:V...]] [--topk K]\n"
               "build persists the CSR graph plus fully-built sketches; --snapshot\n"
               "mmaps such a file and serves estimates zero-copy. A snapshot can pack\n"
               "SEVERAL substrates (--kinds bf,kmv --orient both): counting estimates\n"
               "(tc, 4cc, kclique) are answered by a DAG substrate, neighborhood\n"
               "queries (cluster, cc, pair, lp) by a symmetric one, and --sketch KIND\n"
               "routes to a specific carried kind (default: the file's primary).\n"
               "serve maps the snapshot once and answers one query per line (send\n"
               "'help' on the session for the request grammar) — over stdin, or as a\n"
               "concurrent TCP server with --listen PORT (127.0.0.1; PORT 0 picks an\n"
               "ephemeral port, printed on stderr; --max-conns caps live sessions;\n"
               "SIGINT/SIGTERM stop it gracefully). --transport picks the serving\n"
               "model: 'threads' (default) spends one blocking thread per connection,\n"
               "'epoll' multiplexes every session over an event loop and a small\n"
               "worker pool with pipelined request handling — replies are\n"
               "byte-identical either way. client connects a scripted\n"
               "stdin/stdout session to such a server. serve --live additionally\n"
               "accepts the update/epoch verbs: sessions stage edge inserts/deletes\n"
               "and seal them as a new snapshot generation while queries keep being\n"
               "answered (each sees a whole generation, never a partial batch).\n"
               "update does the same offline: it applies --inserts/--deletes edge\n"
               "files and/or replays an --apply-log delta log onto a snapshot\n"
               "incrementally and writes the resealed next generation.\n");
}

[[noreturn]] void fail(const std::string& msg) {
  std::fprintf(stderr, "pgtool: error: %s\n\n", msg.c_str());
  print_usage(stderr);
  std::exit(2);
}

// --- Strict numeric parsing: the whole token must be consumed, and a
// --- floating value must be finite — std::from_chars accepts "nan" and
// --- "inf", which would silently poison every threshold/budget downstream
// --- (e.g. a nan tau makes every similarity comparison false).

template <typename T>
T parse_number(const std::string& flag, std::string_view s) {
  T out{};
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    fail("flag " + flag + " expects a number, got '" + std::string(s) + "'");
  }
  if constexpr (std::is_floating_point_v<T>) {
    if (!std::isfinite(out)) {
      fail("flag " + flag + " expects a finite number, got '" + std::string(s) + "'");
    }
  }
  return out;
}

/// Parse a `--kinds` comma list ("bf,kmv") into a deduplicated kind list,
/// preserving order (the FIRST kind becomes the snapshot's primary
/// substrate — the default routing target of kind-less queries).
std::vector<SketchKind> parse_kinds(const std::string& spec) {
  std::vector<SketchKind> kinds;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string_view item(spec.data() + pos, comma - pos);
    const auto kind = parse_sketch_kind(item);
    if (!kind) {
      fail("--kinds entries must be sketch kinds (bf, kh, 1h, kmv), got '" +
           std::string(item) + "'");
    }
    if (std::find(kinds.begin(), kinds.end(), *kind) == kinds.end()) {
      kinds.push_back(*kind);
    }
    pos = comma + 1;
    if (comma == spec.size()) break;
  }
  if (kinds.empty()) fail("--kinds requires at least one sketch kind");
  return kinds;
}

std::vector<engine::VertexPair> parse_pairs(const std::string& spec) {
  std::vector<engine::VertexPair> pairs;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string_view item(spec.data() + pos, comma - pos);
    const std::size_t colon = item.find(':');
    if (colon == std::string_view::npos) {
      fail("--pairs entries must be U:V, got '" + std::string(item) + "'");
    }
    engine::VertexPair p;
    p.u = parse_number<VertexId>("--pairs", item.substr(0, colon));
    p.v = parse_number<VertexId>("--pairs", item.substr(colon + 1));
    pairs.push_back(p);
    pos = comma + 1;
    if (comma == spec.size()) break;
  }
  return pairs;
}

CsrGraph load_graph(const std::string& spec) {
  if (spec.rfind("kron:", 0) == 0) {
    unsigned scale = 0;
    double ef = 0;
    if (std::sscanf(spec.c_str(), "kron:%u:%lf", &scale, &ef) != 2) {
      fail("malformed Kronecker spec '" + spec + "' (expected kron:SCALE:EDGEFACTOR)");
    }
    return gen::kronecker(scale, ef, 42);
  }
  if (spec.size() > 4 && spec.substr(spec.size() - 4) == ".mtx") {
    return io::read_matrix_market(spec);
  }
  return io::read_edge_list(spec);
}

const CommandSpec& find_command(const std::string& name) {
  for (const CommandSpec& c : kCommands) {
    if (name == c.name) return c;
  }
  fail("unknown command '" + name + "'");
}

const FlagSpec* find_flag(std::string_view token) {
  for (const FlagSpec& f : kFlagSpecs) {
    if (token == f.name || (f.alias != nullptr && token == f.alias)) return &f;
  }
  return nullptr;
}

Args parse(int argc, char** argv) {
  if (argc < 2) fail("missing command");
  Args a;
  a.command = argv[1];
  const CommandSpec& cmd = find_command(a.command);

  unsigned seen = 0;
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    // `--orient=MODE` is the lookahead-free spelling: `--orient both`
    // consumes a following bare `both`, which is ambiguous when a graph
    // file is literally named both/dag/sym.
    std::string orient_inline;
    if (token.rfind("--orient=", 0) == 0) {
      orient_inline = token.substr(9);
      token = "--orient";
    }
    const FlagSpec* flag = token.rfind('-', 0) == 0 ? find_flag(token) : nullptr;
    if (flag == nullptr) {
      if (token.rfind('-', 0) == 0) fail("unknown flag '" + token + "'");
      if (a.input.empty()) {
        a.input = token;
      } else if (cmd.two_positionals && a.input2.empty()) {
        a.input2 = token;
      } else {
        fail("unexpected positional argument '" + token + "' (input already given: '" +
             a.input + "')");
      }
      continue;
    }
    if ((cmd.allowed & flag->bit) == 0) {
      fail("flag " + token + " does not apply to the " + a.command + " command");
    }
    if ((seen & flag->bit) != 0) fail("duplicate flag " + token);
    seen |= flag->bit;
    std::string value;
    if (flag->takes_value) {
      if (i + 1 >= argc) fail("flag " + token + " requires a value");
      value = argv[++i];
    }

    switch (flag->bit) {
      case kFSketch:
        a.sketch_flags_set = true;
        if (value == "exact") {
          a.exact = true;
        } else if (const auto kind = parse_sketch_kind(value)) {
          a.pg.kind = *kind;
          a.sketch_kind_set = true;
        } else {
          fail("unknown sketch kind '" + value + "' (expected bf, 1h, kh, kmv, or exact)");
        }
        break;
      case kFEstimator: {
        const auto e = parse_bf_estimator(value);
        if (!e) fail("unknown BF estimator '" + value + "' (expected and, limit, or or)");
        a.pg.bf_estimator = *e;
        a.estimator_set = true;
        a.sketch_flags_set = true;
        a.sketch_param_set = true;
        break;
      }
      case kFBudget:
        a.pg.storage_budget = parse_number<double>(token, value);
        a.sketch_flags_set = true;
        a.sketch_param_set = true;
        break;
      case kFBfHashes:
        a.pg.bf_hashes = parse_number<std::uint32_t>(token, value);
        a.sketch_flags_set = true;
        a.sketch_param_set = true;
        break;
      case kFK:
        a.pg.minhash_k = parse_number<std::uint32_t>(token, value);
        a.sketch_flags_set = true;
        a.sketch_param_set = true;
        break;
      case kFSeed:
        a.pg.seed = parse_number<std::uint64_t>(token, value);
        a.sketch_flags_set = true;
        a.sketch_param_set = true;
        break;
      case kFKClique:
        a.kclique = parse_number<unsigned>(token, value);
        break;
      case kFTau:
        a.tau = parse_number<double>(token, value);
        break;
      case kFMeasure: {
        const auto m = algo::parse_similarity_measure(value);
        if (!m) {
          fail("unknown measure '" + value +
               "' (expected jaccard, overlap, common, total, adamic, or resource)");
        }
        a.measure_cluster = *m;
        a.measure_lp = *m;
        break;
      }
      case kFThreads:
        util::set_threads(parse_number<int>(token, value));
        break;
      case kFSnapshot:
        a.snapshot = value;
        break;
      case kFOutput:
        a.output = value;
        break;
      case kFOrient: {
        // --orient takes an OPTIONAL value: bare --orient keeps its v1
        // meaning (DAG only); "both" packs both orientations; "dag"/"sym"
        // spell the single-orientation modes explicitly. The `--orient=MODE`
        // spelling never consumes the next token.
        std::string_view mode = orient_inline;
        bool lookahead = false;
        if (mode.empty() && i + 1 < argc) {
          const std::string_view next = argv[i + 1];
          if (next == "both" || next == "dag" || next == "sym") {
            mode = next;
            lookahead = true;
          }
        }
        if (mode == "both") {
          a.orient = OrientMode::kBoth;
        } else if (mode == "dag") {
          a.orient = OrientMode::kDag;
        } else if (mode == "sym") {
          a.orient = OrientMode::kSym;
        } else if (mode.empty()) {
          a.orient = OrientMode::kDag;  // bare --orient
        } else {
          fail("--orient expects both, dag, or sym (got '" + std::string(mode) + "')");
        }
        if (lookahead) ++i;
        break;
      }
      case kFKinds:
        a.kinds = parse_kinds(value);
        break;
      case kFPairs:
        a.pairs = parse_pairs(value);
        break;
      case kFKind: {
        const auto k = engine::parse_estimate_kind(value);
        if (!k) {
          fail("unknown estimate kind '" + value +
               "' (expected intersection, jaccard, overlap, common, or total)");
        }
        a.kind = *k;
        break;
      }
      case kFTopK:
        a.topk = parse_number<std::uint32_t>(token, value);
        break;
      case kFListen:
        a.listen = parse_number<std::uint16_t>(token, value);
        break;
      case kFMaxConns:
        a.max_conns = parse_number<int>(token, value);
        if (a.max_conns < 1) fail("--max-conns must be at least 1");
        break;
      case kFMetricsPort:
        a.metrics_port = parse_number<std::uint16_t>(token, value);
        break;
      case kFSlowMs:
        a.slow_ms = parse_number<double>(token, value);
        if (a.slow_ms < 0) fail("--slow-ms must be non-negative");
        break;
      case kFLive:
        a.live = true;
        break;
      case kFDeltaLog:
        a.delta_log = value;
        break;
      case kFInserts:
        a.inserts_path = value;
        break;
      case kFDeletes:
        a.deletes_path = value;
        break;
      case kFApplyLog:
        a.apply_log = value;
        break;
      case kFTransport: {
        const auto kind = net::parse_transport_kind(value);
        if (!kind) {
          fail("unknown transport '" + value + "' (expected threads or epoll)");
        }
        a.transport = *kind;
        break;
      }
      default: fail("unhandled flag " + token);  // unreachable
    }
  }

  // --- Per-command input validation. ---
  if ((seen & kFMaxConns) != 0 && !a.listen) {
    fail("--max-conns only applies with --listen");
  }
  if ((seen & kFTransport) != 0 && !a.listen) {
    fail("--transport only applies with --listen");
  }
  if (a.command == "serve" && !a.delta_log.empty() && !a.live) {
    fail("--delta-log on serve requires --live");
  }
  if (a.command == "update") {
    if (a.output.empty()) fail("update requires an output path (-o <out.pgs>)");
    if (a.inserts_path.empty() && a.deletes_path.empty() && a.apply_log.empty()) {
      fail("update needs changes to apply: --inserts, --deletes, and/or --apply-log");
    }
  }
  if (a.command == "client") {
    if (a.input.empty() || a.input2.empty()) fail("client requires <host> <port>");
    return a;
  }
  if (a.command == "build") {
    if (a.input.empty()) fail("build requires an input <graph>");
    if (a.output.empty()) fail("build requires an output path (-o <file.pgs>)");
    if (a.exact) fail("--sketch exact has no sketches to persist");
    if (!a.kinds.empty() && a.sketch_kind_set) {
      fail("give either --sketch or --kinds, not both");
    }
  } else if (cmd.positional_is_pgs) {
    if (a.input.empty()) fail(a.command + " requires a snapshot path (<file.pgs>)");
  } else {
    if (!a.input.empty() && !a.snapshot.empty()) {
      fail("give either <graph> or --snapshot, not both ('" + a.input + "' and '" +
           a.snapshot + "')");
    }
    if (a.input.empty() && a.snapshot.empty()) {
      fail("missing input: give <graph> or --snapshot <file.pgs>");
    }
    if (!a.snapshot.empty() && !a.exact) {
      // --sketch KIND routes to that substrate of a multi-substrate
      // snapshot; the remaining sketch-construction flags have nothing to
      // configure (the file's parameters win) and are warned about.
      if (a.sketch_kind_set) a.route_kind = a.pg.kind;
      if (a.sketch_param_set) {
        std::fprintf(stderr,
                     "pgtool: warning: sketch flags other than --sketch are ignored "
                     "with --snapshot; the representation comes from the file\n");
      }
    }
  }
  if (a.command == "pair" && a.pairs.empty()) {
    fail("pair requires --pairs U:V[,U:V...]");
  }
  if (a.estimator_set && (a.exact || a.pg.kind != SketchKind::kBloomFilter)) {
    std::fprintf(stderr,
                 "pgtool: warning: --estimator only applies to --sketch bf; ignored\n");
  }
  return a;
}

void print_graph_line(const CsrGraph& g) {
  std::printf("graph: n=%u, m=%llu, d_max=%llu, d_avg=%.1f\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()),
              static_cast<unsigned long long>(g.max_degree()), g.avg_degree());
}

/// Load the command's input into an Engine, printing the banner lines the
/// serving commands have always printed (snapshot facts, then the graph).
engine::Engine make_engine(const Args& a) {
  if (!a.snapshot.empty()) {
    util::Timer load_timer;
    engine::Engine e = engine::Engine::from_snapshot(a.snapshot);
    const io::SnapshotInfo& info = *e.snapshot_info();
    std::printf("snapshot: %s, substrates [%s], %.2f MB file, loaded in %.4fs "
                "(primary construction %.4fs)\n",
                a.snapshot.c_str(), io::describe_substrates(info.substrates).c_str(),
                static_cast<double>(info.file_bytes) / 1e6, load_timer.seconds(),
                info.construction_seconds);
    print_graph_line(e.graph());
    return e;
  }
  CsrGraph g = load_graph(a.input);
  print_graph_line(g);
  return engine::Engine(std::move(g), a.pg);
}

/// The bound line shared by the commands that surface one.
void print_bound(const engine::QueryResult& r) {
  if (!r.bound) return;
  std::printf("  deviation bound: P(|est - true| >= %s) <= %s  [%s]\n",
              engine::format_estimate(r.bound->t).c_str(),
              engine::format_estimate(r.bound->probability).c_str(), r.bound->name);
}

int run_counting(const Args& a) {
  engine::Engine e = make_engine(a);
  engine::Query q;
  if (a.command == "tc") {
    q = engine::TriangleCount{a.exact, a.route_kind};
  } else if (a.command == "4cc") {
    q = engine::FourCliqueCount{a.exact, a.route_kind};
  } else {
    q = engine::KCliqueCount{a.kclique, a.exact, a.route_kind};
  }
  const engine::QueryResult r = e.run(q);

  if (a.command == "tc") {
    if (r.exact) {
      std::printf("exact TC = %llu (%.4fs)\n",
                  static_cast<unsigned long long>(r.value), r.elapsed_seconds);
    } else {
      std::printf("%s TC ≈ %.0f (%.4fs, +%.4fs construction, relmem %.2f)\n",
                  to_string(r.sketch.kind), r.value, r.elapsed_seconds,
                  r.sketch.construction_seconds, r.sketch.relative_memory);
      print_bound(r);
    }
  } else if (a.command == "4cc") {
    if (r.exact) {
      std::printf("exact 4CC = %llu (%.4fs)\n",
                  static_cast<unsigned long long>(r.value), r.elapsed_seconds);
    } else {
      std::printf("%s 4CC ≈ %.0f (%.4fs, relmem %.2f)\n", to_string(r.sketch.kind),
                  r.value, r.elapsed_seconds, r.sketch.relative_memory);
    }
  } else {
    if (r.exact) {
      std::printf("exact %u-clique count = %llu (%.4fs)\n", a.kclique,
                  static_cast<unsigned long long>(r.value), r.elapsed_seconds);
    } else {
      std::printf("%s %u-clique count ≈ %.0f (%.4fs, relmem %.2f)\n",
                  to_string(r.sketch.kind), a.kclique, r.value, r.elapsed_seconds,
                  r.sketch.relative_memory);
    }
  }
  return 0;
}

int run_cluster(const Args& a) {
  engine::Engine e = make_engine(a);
  const engine::QueryResult r =
      e.run(engine::Cluster{a.measure_cluster, a.tau, a.exact, a.route_kind});
  if (r.exact) {
    std::printf("exact clustering: %zu clusters, %llu kept edges, %.4fs\n",
                r.cluster->num_clusters,
                static_cast<unsigned long long>(r.cluster->kept_edges),
                r.elapsed_seconds);
  } else {
    std::printf("%s clustering: %zu clusters, %llu kept edges, %.4fs "
                "(+%.4fs sketch construction, relmem %.2f)\n",
                to_string(r.sketch.kind), r.cluster->num_clusters,
                static_cast<unsigned long long>(r.cluster->kept_edges),
                r.elapsed_seconds, r.sketch.construction_seconds,
                r.sketch.relative_memory);
  }
  return 0;
}

int run_cc(const Args& a) {
  engine::Engine e = make_engine(a);
  const engine::QueryResult r = e.run(engine::ClusteringCoeff{a.exact, a.route_kind});
  if (r.exact) {
    std::printf("exact global clustering coefficient = %s (%.4fs)\n",
                engine::format_estimate(r.value).c_str(), r.elapsed_seconds);
  } else {
    std::printf("%s global clustering coefficient = %s (%.4fs, +%.4fs construction, "
                "relmem %.2f)\n",
                to_string(r.sketch.kind), engine::format_estimate(r.value).c_str(),
                r.elapsed_seconds, r.sketch.construction_seconds,
                r.sketch.relative_memory);
    print_bound(r);
  }
  return 0;
}

int run_pair(const Args& a) {
  engine::Engine e = make_engine(a);
  const engine::QueryResult r =
      e.run(engine::PairEstimate{a.kind, a.pairs, a.exact, a.route_kind});
  const char* scheme = r.exact ? "exact" : to_string(r.sketch.kind);
  for (const engine::PairValue& p : r.pairs) {
    std::printf("%s %s(%u, %u) = %s\n", scheme, engine::to_string(a.kind), p.u, p.v,
                engine::format_estimate(p.value).c_str());
  }
  print_bound(r);
  std::printf("scored %zu pair%s in %.4fs\n", r.pairs.size(),
              r.pairs.size() == 1 ? "" : "s", r.elapsed_seconds);
  return 0;
}

int run_lp(const Args& a) {
  engine::Engine e = make_engine(a);
  const engine::QueryResult r =
      e.run(engine::LinkPredict{a.topk, a.measure_lp, a.exact, a.route_kind});
  std::printf("%s top-%u predicted links by %s:\n",
              r.exact ? "exact" : to_string(r.sketch.kind), a.topk,
              to_string(a.measure_lp));
  for (const engine::PairValue& p : r.pairs) {
    std::printf("  %u %u %s\n", p.u, p.v, engine::format_estimate(p.value).c_str());
  }
  std::printf("%zu candidate link%s in %.4fs\n", r.pairs.size(),
              r.pairs.size() == 1 ? "" : "s", r.elapsed_seconds);
  return 0;
}

int run_stats(const Args& a) {
  engine::Engine e = make_engine(a);
  const engine::QueryResult r = e.run(engine::GraphStats{});
  std::printf("degree moments: sum d^2 = %.3e, sum d^3 = %.3e\n",
              r.stats->degree_moment2, r.stats->degree_moment3);
  std::printf("CSR memory: %.2f MB%s\n", static_cast<double>(r.stats->csr_bytes) / 1e6,
              r.stats->mapped ? " (mmap-served)" : "");
  if (const io::SnapshotInfo* info = e.snapshot_info()) {
    std::printf("substrates: %s\n", io::describe_substrates(info->substrates).c_str());
  }
  return 0;
}

int run_build(const Args& a) {
  const CsrGraph g = load_graph(a.input);
  print_graph_line(g);

  // One substrate per (kind, orientation), kind-major with the symmetric
  // orientation first — so the FIRST listed kind's symmetric sketches (or
  // its DAG ones under plain --orient) are the snapshot's primary
  // substrate, the default routing target of kind-less queries.
  std::vector<SketchKind> kinds = a.kinds;
  if (kinds.empty()) kinds = {a.pg.kind};
  const io::SubstrateSet set =
      io::build_substrates(g, kinds, /*symmetric=*/a.orient != OrientMode::kDag,
                           /*degree_oriented=*/a.orient != OrientMode::kSym, a.pg);
  std::size_t sketch_bytes = 0;
  double construction = 0.0;
  for (const ProbGraph& pg : set.sketches) {
    sketch_bytes += pg.memory_bytes();
    construction += pg.construction_seconds();
  }

  util::Timer timer;
  io::save_snapshot(a.output, set.substrates);
  std::vector<io::SubstrateInfo> infos;
  for (const io::SnapshotSubstrate& s : set.substrates) {
    infos.push_back({s.pg->kind(), s.degree_oriented, s.pg->construction_seconds()});
  }
  std::printf("wrote %s: substrates [%s], %.2f MB sketch arenas "
              "(relmem %.2f of the CSR), construction %.4fs, save %.4fs\n",
              a.output.c_str(), io::describe_substrates(infos).c_str(),
              static_cast<double>(sketch_bytes) / 1e6,
              static_cast<double>(sketch_bytes) / static_cast<double>(g.memory_bytes()),
              construction, timer.seconds());
  return 0;
}

/// Raw "U V" edge pairs for `update` — NOT io::read_edge_list, which builds
/// a normalized CsrGraph; a change batch keeps the pairs as written (the
/// apply layer owns normalization, live/apply.hpp).
std::vector<Edge> read_edge_pairs(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open edge file '" + path + "'");
  std::vector<Edge> edges;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#' || line[first] == '%') continue;
    unsigned long long u = 0;
    unsigned long long v = 0;
    if (std::sscanf(line.c_str(), "%llu %llu", &u, &v) != 2 ||
        u > std::numeric_limits<VertexId>::max() ||
        v > std::numeric_limits<VertexId>::max()) {
      fail(path + ":" + std::to_string(lineno) + ": expected 'U V' vertex ids");
    }
    edges.push_back({static_cast<VertexId>(u), static_cast<VertexId>(v)});
  }
  return edges;
}

int run_update(const Args& a) {
  const io::Snapshot snap = io::load_snapshot(a.input);
  const io::SnapshotInfo& info = snap.info();
  std::printf("snapshot: %s, substrates [%s], n=%u, m=%llu\n", a.input.c_str(),
              io::describe_substrates(info.substrates).c_str(), info.num_vertices,
              static_cast<unsigned long long>(snap.graph().num_edges()));

  // The change sequence: replayed delta-log batches first (in log order),
  // then the --inserts/--deletes files as one final batch.
  std::vector<live::DeltaBatch> batches;
  if (!a.apply_log.empty()) batches = live::read_delta_log(a.apply_log);
  live::DeltaBatch file_batch;
  if (!a.inserts_path.empty()) file_batch.inserts = read_edge_pairs(a.inserts_path);
  if (!a.deletes_path.empty()) file_batch.deletes = read_edge_pairs(a.deletes_path);
  if (!file_batch.empty()) batches.push_back(std::move(file_batch));

  // Fold the sequence into ONE net batch relative to the base snapshot:
  // within a batch deletions win (the apply-layer rule); across batches the
  // LATER batch wins. Sketch maintenance depends only on the final edge
  // set, so applying the net batch once is bit-identical to applying the
  // sequence. Keys are normalized (min,max) so "2 1" in one batch and
  // "1 2" in another meet at the same entry.
  std::map<Edge, bool> forced;  // true = present, false = absent
  const auto norm = [](Edge e) {
    if (e.first > e.second) std::swap(e.first, e.second);
    return e;
  };
  for (const live::DeltaBatch& b : batches) {
    for (const Edge& e : b.inserts) forced[norm(e)] = true;
    for (const Edge& e : b.deletes) forced[norm(e)] = false;
  }
  live::DeltaBatch net;
  for (const auto& [e, present] : forced) {
    (present ? net.inserts : net.deletes).push_back(e);
  }

  live::UpdatedSnapshot updated = live::apply_batch(snap, net);
  util::Timer save_timer;
  io::save_snapshot(a.output, updated.substrates);
  if (!a.delta_log.empty()) {
    live::DeltaLogWriter writer(a.delta_log);
    writer.append(net);
  }

  const live::ApplyStats& s = updated.stats;
  std::printf("applied %llu insert%s, %llu delete%s (%zu batch%s): n=%u, m=%llu; "
              "%llu vertices patched in place, %llu rebuilt, %llu substrate%s "
              "rebuilt cold; apply %.4fs\n",
              static_cast<unsigned long long>(s.inserts_applied),
              s.inserts_applied == 1 ? "" : "s",
              static_cast<unsigned long long>(s.deletes_applied),
              s.deletes_applied == 1 ? "" : "s", batches.size(),
              batches.size() == 1 ? "" : "es", s.num_vertices,
              static_cast<unsigned long long>(s.num_edges),
              static_cast<unsigned long long>(s.vertices_patched),
              static_cast<unsigned long long>(s.vertices_rebuilt),
              static_cast<unsigned long long>(s.substrates_rebuilt),
              s.substrates_rebuilt == 1 ? "" : "s", s.seconds);
  std::printf("wrote %s (save %.4fs)\n", a.output.c_str(), save_timer.seconds());
  return 0;
}

// SIGINT/SIGTERM → graceful server stop. The pointer is published before
// the handlers are installed and cleared after they are restored, so the
// handler only ever sees a live server. `volatile` is NOT enough here: it
// neither orders the publication against the handler installation nor
// guarantees a tear-free cross-thread read (signals may be delivered on
// any thread once --listen sessions exist). A lock-free std::atomic gives
// both; the handler's relaxed load is async-signal-safe precisely because
// it is lock-free.
std::atomic<net::Transport*> g_signal_server{nullptr};
static_assert(std::atomic<net::Transport*>::is_always_lock_free,
              "the signal handler requires a lock-free atomic pointer");

extern "C" void stop_signal_handler(int) {
  net::Transport* const s = g_signal_server.load(std::memory_order_relaxed);
  if (s != nullptr) s->request_stop();  // async-signal-safe (self-pipe write)
}

/// Shared shutdown tail of both serve modes: the registry digest on
/// stderr, so a stopped server leaves its telemetry behind even when
/// nothing ever scraped it.
void print_metrics_summary() {
  const std::string summary = obs::Registry::global().summary_text();
  if (summary.empty()) return;
  std::fprintf(stderr, "pgtool serve: metrics summary\n%s", summary.c_str());
}

/// RAII /metrics endpoint: --metrics-port starts it next to either serve
/// mode on its own thread; destruction stops and joins it.
class ScopedMetricsServer {
 public:
  explicit ScopedMetricsServer(std::uint16_t port) : server_(port) {
    std::fprintf(stderr,
                 "pgtool serve: metrics on http://127.0.0.1:%u/metrics\n",
                 static_cast<unsigned>(server_.port()));
    thread_ = std::thread([this] { server_.run(); });
  }
  ~ScopedMetricsServer() {
    server_.request_stop();
    thread_.join();
  }
  ScopedMetricsServer(const ScopedMetricsServer&) = delete;
  ScopedMetricsServer& operator=(const ScopedMetricsServer&) = delete;

 private:
  obs::MetricsHttpServer server_;
  std::thread thread_;
};

int run_serve(const Args& a) {
  // The banner goes to stderr so stdout carries protocol replies only —
  // scripted sessions (CI transcripts) diff cleanly.
  util::Timer load_timer;
  // --live wraps the snapshot in a LiveEngine (generation 1); sessions may
  // then stage/seal updates. Plain serve keeps the single static Engine.
  std::optional<engine::Engine> owned;
  std::optional<engine::LiveEngine> live;
  if (a.live) {
    engine::LiveEngine::Options live_opts;
    live_opts.delta_log_path = a.delta_log;
    live.emplace(a.input, live_opts);
  } else {
    owned.emplace(engine::Engine::from_snapshot(a.input));
  }
  const engine::Engine& e = live ? live->current_engine_unsynchronized() : *owned;
  const io::SnapshotInfo& info = *e.snapshot_info();
  const char* live_note = live ? ", live updates on" : "";

  engine::ServeOptions session_opts;
  session_opts.slow_query_seconds = a.slow_ms / 1e3;

  std::optional<ScopedMetricsServer> metrics;
  if (a.metrics_port) metrics.emplace(*a.metrics_port);

  if (!a.listen) {
    std::fprintf(stderr,
                 "pgtool serve: %s — n=%u, substrates [%s], mapped in %.4fs%s; one "
                 "query per line, 'help' for the grammar, 'quit' to exit\n",
                 a.input.c_str(), e.graph().num_vertices(),
                 io::describe_substrates(info.substrates).c_str(), load_timer.seconds(),
                 live_note);
    const std::size_t answered =
        live ? engine::serve_session(*live, std::cin, std::cout, session_opts)
             : engine::serve_session(*owned, std::cin, std::cout, session_opts);
    std::fprintf(stderr, "pgtool serve: session over, %zu quer%s answered\n", answered,
                 answered == 1 ? "y" : "ies");
    print_metrics_summary();
    return 0;
  }

  net::ServeOptions opts;
  if (live) {
    opts.live = &*live;
  } else {
    opts.engine = &*owned;
  }
  opts.port = *a.listen;
  opts.max_conns = a.max_conns;
  opts.session = session_opts;
  const std::unique_ptr<net::Transport> server =
      net::make_transport(a.transport, opts);
  std::fprintf(stderr,
               "pgtool serve: %s — n=%u, substrates [%s], mapped in %.4fs%s; listening "
               "on 127.0.0.1:%u (%s transport, max %d concurrent sessions over one "
               "mapping), SIGINT/SIGTERM to stop\n",
               a.input.c_str(), e.graph().num_vertices(),
               io::describe_substrates(info.substrates).c_str(), load_timer.seconds(),
               live_note, static_cast<unsigned>(server->port()),
               net::transport_kind_name(a.transport), a.max_conns);

  std::signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill the server
  g_signal_server.store(server.get());  // published (seq_cst) before the handlers exist
  std::signal(SIGINT, stop_signal_handler);
  std::signal(SIGTERM, stop_signal_handler);
  server->run();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  g_signal_server.store(nullptr);  // cleared only after the handlers are gone

  const net::Transport::Counters c = server->counters();
  std::fprintf(stderr,
               "pgtool serve: stopped — %llu session%s served, %llu rejected at "
               "capacity, %llu quer%s answered\n",
               static_cast<unsigned long long>(c.accepted), c.accepted == 1 ? "" : "s",
               static_cast<unsigned long long>(c.rejected),
               static_cast<unsigned long long>(c.queries_answered),
               c.queries_answered == 1 ? "y" : "ies");
  print_metrics_summary();
  return 0;
}

int run_client(const Args& a) {
  const std::uint16_t port = parse_number<std::uint16_t>("<port>", a.input2);
  net::Socket sock = net::connect_to(a.input, port);  // throws with the errno text
  std::signal(SIGPIPE, SIG_IGN);

  // Single-threaded two-way pump: stdin bytes go to the server as-is (its
  // LineReader does the framing), reply bytes go to stdout as they arrive.
  // Stdin EOF half-closes the connection ("no more requests"); the session
  // ends when the server closes — after `quit`, a stop signal, or a
  // protocol-free probe (empty stdin), so piped transcripts match the
  // stdin REPL byte for byte.
  bool stdin_open = true;
  char buf[1 << 14];
  for (;;) {
    pollfd fds[2] = {{sock.fd(), POLLIN, 0}, {STDIN_FILENO, POLLIN, 0}};
    const nfds_t nfds = stdin_open ? 2 : 1;
    if (::poll(fds, nfds, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[0].revents != 0) {
      const long got = sock.read_some(buf, sizeof buf);
      if (got <= 0) break;  // server closed: the session is over
      if (std::fwrite(buf, 1, static_cast<std::size_t>(got), stdout) !=
              static_cast<std::size_t>(got) ||
          std::fflush(stdout) != 0) {
        break;  // downstream consumer gone (SIGPIPE is ignored): stop pumping
      }
    }
    if (stdin_open && fds[1].revents != 0) {
      const ssize_t got = ::read(STDIN_FILENO, buf, sizeof buf);
      if (got <= 0) {
        stdin_open = false;
        sock.shutdown_write();
      } else if (!sock.write_all(buf, static_cast<std::size_t>(got))) {
        break;  // server gone mid-request
      }
    }
  }
  return 0;
}

int run_command(int argc, char** argv) {
  const Args a = parse(argc, argv);
  return find_command(a.command).run(a);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run_command(argc, argv);
  } catch (const std::exception& e) {
    // I/O and format errors (unreadable graphs, rejected snapshots, wrong
    // snapshot orientation, ...) surface here as clean diagnostics rather
    // than std::terminate.
    std::fprintf(stderr, "pgtool: error: %s\n", e.what());
    return 1;
  }
}
